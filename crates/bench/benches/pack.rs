//! Pack/unpack micro-benchmarks: flattening-on-the-fly vs ol-list walking
//! vs the raw memcpy ceiling (the paper's copy-time overhead, Section 2.1),
//! plus the compiled run-program interpreter vs the naive tree walk and
//! the sharded multi-threaded copy.
//!
//! Emits `BENCH_pack.json` at the workspace root in the versioned
//! [`lio_bench::schema`] format: the measured medians, the
//! tree-walk/compiled/sharded ratios, and the machine's core count
//! (sharded wall-clock gains require real parallelism; the ratios are
//! recorded honestly either way).

use lio_bench::harness::Group;
use lio_bench::schema;
use lio_datatype::{
    darray, ff_pack, ff_pack_shards, ff_unpack, Datatype, Distrib, FlatIter, OlList, Order,
};
use std::hint::black_box;

/// The naive tree-walk baseline the compiled program replaces: descend
/// the type tree for every leaf run via `FlatIter`.
fn treewalk_pack(src: &[u8], count: u64, d: &Datatype, skip: u64, out: &mut [u8]) -> usize {
    let mut cursor = 0;
    for run in FlatIter::with_skip(d, count, skip) {
        if cursor == out.len() {
            break;
        }
        let n = (run.len as usize).min(out.len() - cursor);
        let s = run.disp as usize;
        out[cursor..cursor + n].copy_from_slice(&src[s..s + n]);
        cursor += n;
    }
    cursor
}

/// One emitted measurement: group/id plus median ns and bytes moved.
struct Entry {
    group: &'static str,
    id: String,
    median_ns: f64,
    bytes: u64,
}

/// Pack 1 MiB of data through vectors of varying block size.
fn bench_pack() {
    let mut g = Group::new("pack");
    g.sample_size(20);
    for sblock in [8u64, 64, 512, 4096] {
        let nblock = (1 << 20) / sblock;
        let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
        let src = vec![0xA5u8; d.extent() as usize];
        let total = d.size() as usize;
        let mut out = vec![0u8; total];
        g.throughput_bytes(total as u64);

        g.bench(format!("listless_ff/{sblock}"), || {
            ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
        });

        let ol = OlList::flatten(&d, 1);
        g.bench(format!("list_based_ol/{sblock}"), || {
            ol.pack(black_box(&src), 0, black_box(&mut out));
        });

        // the per-access flattening the list-based engine performs for
        // memtypes (list creation + pack + drop)
        g.bench(format!("list_based_flatten_and_pack/{sblock}"), || {
            let ol = OlList::flatten(black_box(&d), 1);
            ol.pack(black_box(&src), 0, black_box(&mut out));
        });

        g.bench(format!("memcpy_ceiling/{sblock}"), || {
            out.copy_from_slice(black_box(&src[..total]));
        });
    }
}

/// Unpack mirror of the pack benchmark.
fn bench_unpack() {
    let mut g = Group::new("unpack");
    g.sample_size(20);
    for sblock in [8u64, 512] {
        let nblock = (1 << 20) / sblock;
        let d = Datatype::vector(nblock, 1, 2, &Datatype::basic(sblock as u32)).unwrap();
        let total = d.size() as usize;
        let packed = vec![0x5Au8; total];
        let mut dst = vec![0u8; d.extent() as usize];
        g.throughput_bytes(total as u64);

        g.bench(format!("listless_ff/{sblock}"), || {
            ff_unpack(black_box(&packed), black_box(&mut dst), 1, &d, 0);
        });

        let ol = OlList::flatten(&d, 1);
        g.bench(format!("list_based_ol/{sblock}"), || {
            ol.unpack(black_box(&packed), black_box(&mut dst), 0);
        });
    }
}

/// Pack through a deep nested type (no strided fast path): the generic
/// FlatIter path vs the ol-list.
fn bench_pack_nested() {
    let mut g = Group::new("pack_nested");
    g.sample_size(20);
    // 3D subarray: does not reduce to a single strided level
    let d = Datatype::subarray(
        &[64, 64, 64],
        &[32, 32, 32],
        &[16, 16, 16],
        Order::C,
        &Datatype::double(),
    )
    .unwrap();
    let src = vec![1u8; d.extent() as usize];
    let total = d.size() as usize;
    let mut out = vec![0u8; total];
    g.throughput_bytes(total as u64);
    g.bench("listless_ff", || {
        ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
    });
    let ol = OlList::flatten(&d, 1);
    g.bench("list_based_ol", || {
        ol.pack(black_box(&src), 0, black_box(&mut out));
    });
}

/// The benchmark shapes for the compiled-vs-treewalk-vs-sharded matrix:
/// a count scaling each shape's data volume to ≥ 4 MiB for the sharded
/// rows, and the datatype itself.
fn shapes() -> Vec<(&'static str, u64, Datatype)> {
    // flat strided: 8 KiB blocks at 2× stride (reduces to one frame)
    let flat = Datatype::vector(512, 1, 2, &Datatype::basic(8192)).unwrap();
    // nested vector-of-vector, small inner blocks: the case the
    // compiled program exists for (tree walk re-descends per 64 B run)
    let inner = Datatype::vector(16, 1, 2, &Datatype::basic(64)).unwrap();
    let nested = Datatype::vector(64, 1, 2, &inner).unwrap();
    // block-cyclic darray over a 2D grid
    let da = darray(
        4,
        1,
        &[1024, 1024],
        &[Distrib::Cyclic(8), Distrib::Block],
        &[2, 2],
        Order::C,
        &Datatype::byte(),
    )
    .unwrap();
    // BTIO-style 3D tile of doubles
    let btio = Datatype::subarray(
        &[128, 64, 64],
        &[64, 32, 32],
        &[32, 16, 16],
        Order::C,
        &Datatype::double(),
    )
    .unwrap();
    let target = 4u64 << 20;
    [
        ("flat_strided", flat),
        ("nested_vv", nested),
        ("darray_cyclic", da),
        ("btio_tile", btio),
    ]
    .into_iter()
    .map(|(name, d)| {
        let count = (target / d.size()).max(1);
        (name, count, d)
    })
    .collect()
}

/// Tree walk vs compiled program vs sharded copy, across the four
/// shapes, on ≥ 4 MiB of data each.
fn bench_pack_compiled(entries: &mut Vec<Entry>) {
    let mut g = Group::new("pack_compiled");
    g.sample_size(20);
    for (name, count, d) in shapes() {
        let span = ((count as i64 - 1) * d.extent() as i64 + d.data_ub()) as usize;
        let src = vec![0xC3u8; span];
        let total = (d.size() * count) as usize;
        let mut out = vec![0u8; total];
        g.throughput_bytes(total as u64);

        let s = g.bench(format!("treewalk/{name}"), || {
            treewalk_pack(black_box(&src), count, &d, 0, black_box(&mut out));
        });
        entries.push(Entry {
            group: "pack_compiled",
            id: format!("treewalk/{name}"),
            median_ns: s.median_ns,
            bytes: total as u64,
        });

        // the compiled interpreter, bypassing the strided fast path so
        // flat shapes measure the program too
        let prog = d.program();
        let s = g.bench(format!("compiled/{name}"), || {
            prog.pack_into(black_box(&src), 0, count, 0, black_box(&mut out));
        });
        entries.push(Entry {
            group: "pack_compiled",
            id: format!("compiled/{name}"),
            median_ns: s.median_ns,
            bytes: total as u64,
        });

        // the shipped single-threaded entry (strided fast path or program)
        let s = g.bench(format!("ff_pack/{name}"), || {
            ff_pack(black_box(&src), count, &d, 0, black_box(&mut out));
        });
        entries.push(Entry {
            group: "pack_compiled",
            id: format!("ff_pack/{name}"),
            median_ns: s.median_ns,
            bytes: total as u64,
        });

        for threads in [2usize, 4] {
            let s = g.bench(format!("sharded{threads}/{name}"), || {
                ff_pack_shards(black_box(&src), count, &d, 0, black_box(&mut out), threads);
            });
            entries.push(Entry {
                group: "pack_compiled",
                id: format!("sharded{threads}/{name}"),
                median_ns: s.median_ns,
                bytes: total as u64,
            });
        }
    }
}

/// Render the measurements (plus derived ratios) as `BENCH_pack.json`
/// at the workspace root, in the versioned schema.
fn write_json(entries: &[Entry]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows: Vec<schema::Entry> = Vec::new();
    for e in entries {
        rows.push(schema::Entry::new(
            e.group,
            e.id.clone(),
            "median_ns",
            e.median_ns,
            "ns",
        ));
        rows.push(schema::Entry::new(
            e.group,
            e.id.clone(),
            "gbps",
            e.bytes as f64 / e.median_ns,
            "GB/s",
        ));
    }
    // derived ratios per shape: treewalk/compiled (>1 means the program
    // is faster) and treewalk/sharded{2,4}
    let med = |id: &str| {
        entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.median_ns)
            .unwrap_or(f64::NAN)
    };
    for name in ["flat_strided", "nested_vv", "darray_cyclic", "btio_tile"] {
        let tw = med(&format!("treewalk/{name}"));
        for variant in ["compiled", "sharded2", "sharded4"] {
            rows.push(schema::Entry::new(
                "pack_compiled_ratio",
                name,
                format!("{variant}_speedup"),
                tw / med(&format!("{variant}/{name}")),
                "x",
            ));
        }
    }
    schema::write_bench_json("BENCH_pack.json", &rows, &[("cores", cores.to_string())]);
}

fn main() {
    bench_pack();
    bench_unpack();
    bench_pack_nested();
    let mut entries = Vec::new();
    bench_pack_compiled(&mut entries);
    write_json(&entries);
}
