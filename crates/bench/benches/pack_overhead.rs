//! CI gate: the compiled run program must not tax the degenerate case.
//!
//! On a *flat contiguous* type both the compiled interpreter and the
//! naive tree walk reduce to one `memcpy`; whatever the program adds on
//! top (cache lookup, frame dispatch, sink bookkeeping) must stay
//! within 2% of the tree walk. Exits non-zero on a sustained violation
//! so `ci.sh` can gate on it; min-of-samples and a retry loop keep the
//! gate robust against scheduler noise.

use lio_bench::harness::Group;
use lio_datatype::{ff_pack, Datatype, FlatIter};
use std::hint::black_box;

const TOLERANCE: f64 = 1.02;
const ATTEMPTS: usize = 5;

fn treewalk_pack(src: &[u8], count: u64, d: &Datatype, skip: u64, out: &mut [u8]) -> usize {
    let mut cursor = 0;
    for run in FlatIter::with_skip(d, count, skip) {
        if cursor == out.len() {
            break;
        }
        let n = (run.len as usize).min(out.len() - cursor);
        let s = run.disp as usize;
        out[cursor..cursor + n].copy_from_slice(&src[s..s + n]);
        cursor += n;
    }
    cursor
}

fn main() {
    // one contiguous 4 MiB run: the degenerate flat case
    let d = Datatype::contiguous(4 << 20, &Datatype::byte()).unwrap();
    let src = vec![0x7Eu8; d.extent() as usize];
    let total = d.size() as usize;
    let mut out = vec![0u8; total];

    let mut g = Group::new("pack_overhead");
    g.sample_size(20);
    g.throughput_bytes(total as u64);

    let mut worst = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let walk = g.bench(format!("treewalk/attempt{attempt}"), || {
            treewalk_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
        });
        let compiled = g.bench(format!("compiled/attempt{attempt}"), || {
            d.program()
                .pack_into(black_box(&src), 0, 1, 0, black_box(&mut out));
        });
        let shipped = g.bench(format!("ff_pack/attempt{attempt}"), || {
            ff_pack(black_box(&src), 1, &d, 0, black_box(&mut out));
        });
        let ratio = compiled.min_ns.max(shipped.min_ns) / walk.min_ns;
        worst = worst.min(ratio);
        println!("pack_overhead: compiled/treewalk min-ratio {ratio:.4} (attempt {attempt})");
        if ratio <= TOLERANCE {
            println!("pack_overhead: PASS ({ratio:.4} <= {TOLERANCE})");
            return;
        }
    }
    eprintln!(
        "pack_overhead: FAIL — compiled pack {worst:.4}x the tree walk on a flat-contiguous \
         type across {ATTEMPTS} attempts (gate {TOLERANCE})"
    );
    std::process::exit(1);
}
