//! Cost of a dormant fault injector on the storage hot path.
//!
//! The acceptance bar for `FaultyFile` is that an *inactive* plan is
//! within noise (< 2%) of the bare storage file: the wrapper stays
//! permanently in place in the test harness, so its disabled path must
//! be a single branch. As in `obs_overhead`, the closest measurable
//! baseline is the bare path measured twice — the run-to-run delta
//! bounds the noise floor — and an active plan is measured alongside to
//! show what injection actually costs when armed.

use lio_bench::harness::Group;
use lio_pfs::decorate::{FaultPlan, FaultyFile};
use lio_pfs::{MemFile, StorageFile};
use std::hint::black_box;

fn main() {
    lio_obs::set_enabled(false);
    // Small requests maximize per-call overhead relative to memcpy work.
    let reqs = 4096usize;
    let req = 256usize;
    let bare = MemFile::with_data(vec![0xA5u8; reqs * req]);
    let dormant = FaultyFile::new(MemFile::with_data(vec![0xA5u8; reqs * req]), {
        FaultPlan::disabled()
    });
    // Survivable plan, worst-case odds: every access rolls the dice.
    let armed = FaultyFile::new(
        MemFile::with_data(vec![0xA5u8; reqs * req]),
        FaultPlan::seeded(0xFA11),
    );

    let mut buf = vec![0u8; req];
    let mut g = Group::new("fault_overhead");
    g.sample_size(30).throughput_bytes((reqs * req) as u64);

    let sweep = |f: &dyn StorageFile, buf: &mut [u8]| {
        for i in 0..reqs {
            // injected transients/short reads are irrelevant to timing;
            // consume the result so the call cannot be elided
            let _ = black_box(f.read_at((i * req) as u64, black_box(buf)));
        }
    };

    let base_a = g.bench("read_bare_a", || sweep(&bare, &mut buf));
    let base_b = g.bench("read_bare_b", || sweep(&bare, &mut buf));
    let idle = g.bench("read_faulty_disabled", || sweep(&dormant, &mut buf));
    let active = g.bench("read_faulty_armed", || sweep(&armed, &mut buf));

    let base = base_a.median_ns.min(base_b.median_ns);
    let noise_pct = (base_a.median_ns - base_b.median_ns).abs() / base * 100.0;
    let idle_pct = (idle.median_ns - base) / base * 100.0;
    let active_pct = (active.median_ns - base) / base * 100.0;
    println!("bare run-to-run delta:      {noise_pct:.2}% (noise floor)");
    println!("disabled plan vs bare:      {idle_pct:+.2}%");
    println!("armed plan vs bare:         {active_pct:+.2}%");
    let verdict = if idle_pct < 2.0_f64.max(noise_pct) {
        "PASS"
    } else if noise_pct >= 2.0 {
        "CHECK (noisy host)"
    } else {
        "FAIL"
    };
    println!("disabled-cost-within-noise (<2%): {verdict}");
}
