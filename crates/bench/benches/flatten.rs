//! Representation costs: explicit flattening (ol-list creation) vs the
//! compact encoding exchanged by fileview caching — the paper's
//! memory-consumption and creation-time overheads (Section 2.1 / 2.4).

use lio_bench::harness::Group;
use lio_datatype::{serialize, Datatype, OlList};
use std::hint::black_box;

fn bench_flatten() {
    let mut g = Group::new("flatten");
    g.sample_size(20);
    for nblock in [64u64, 1024, 16384, 262144] {
        let d = Datatype::vector(nblock, 1, 2, &Datatype::double()).unwrap();

        // ROMIO's explicit flattening at set_view: O(Nblock)
        g.bench(format!("ol_list_create/{nblock}"), || {
            black_box(OlList::flatten(black_box(&d), 1));
        });

        // the listless equivalent: encode the compact tree (O(tree size))
        g.bench(format!("compact_encode/{nblock}"), || {
            black_box(serialize::encode(black_box(&d)));
        });

        // and decode (the receiving side of fileview caching)
        let bytes = serialize::encode(&d);
        g.bench(format!("compact_decode/{nblock}"), || {
            black_box(serialize::decode(black_box(&bytes)).unwrap());
        });
    }
}

/// The collective-write list merge (O(Σ Nblock)) vs the mergeview
/// coverage test (O(depth)).
fn bench_merge() {
    let mut g = Group::new("merge");
    g.sample_size(20);
    for nblock in [1024u64, 16384] {
        // 4 interleaved single-strided views, as 4 ranks produce
        let lists: Vec<OlList> = (0..4)
            .map(|p| {
                let d = Datatype::vector(nblock, 1, 4, &Datatype::double()).unwrap();
                let mut l = OlList::flatten(&d, 1);
                for s in &mut l.segs {
                    s.offset += p * 8;
                }
                l
            })
            .collect();
        g.bench(format!("ol_list_merge/{nblock}"), || {
            let refs: Vec<&OlList> = lists.iter().collect();
            black_box(OlList::merge_lists(black_box(&refs)));
        });

        // the mergeview answer to the same question
        let fields: Vec<lio_datatype::Field> = (0..4)
            .map(|p| lio_datatype::Field {
                disp: p * 8,
                count: 1,
                child: Datatype::vector(nblock, 1, 4, &Datatype::double()).unwrap(),
            })
            .collect();
        let merge = Datatype::struct_type(fields).unwrap();
        let span = merge.extent();
        g.bench(format!("mergeview_coverage/{nblock}"), || {
            black_box(lio_datatype::bytes_below_tiled(
                black_box(&merge),
                span as i64,
            ));
        });
    }
}

fn main() {
    bench_flatten();
    bench_merge();
}
