//! Representation costs: explicit flattening (ol-list creation) vs the
//! compact encoding exchanged by fileview caching — the paper's
//! memory-consumption and creation-time overheads (Section 2.1 / 2.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lio_datatype::{serialize, Datatype, OlList};
use std::hint::black_box;

fn bench_flatten(c: &mut Criterion) {
    let mut g = c.benchmark_group("flatten");
    for nblock in [64u64, 1024, 16384, 262144] {
        let d = Datatype::vector(nblock, 1, 2, &Datatype::double()).unwrap();

        // ROMIO's explicit flattening at set_view: O(Nblock)
        g.bench_with_input(
            BenchmarkId::new("ol_list_create", nblock),
            &nblock,
            |b, _| {
                b.iter(|| OlList::flatten(black_box(&d), 1));
            },
        );

        // the listless equivalent: encode the compact tree (O(tree size))
        g.bench_with_input(
            BenchmarkId::new("compact_encode", nblock),
            &nblock,
            |b, _| {
                b.iter(|| serialize::encode(black_box(&d)));
            },
        );

        // and decode (the receiving side of fileview caching)
        let bytes = serialize::encode(&d);
        g.bench_with_input(
            BenchmarkId::new("compact_decode", nblock),
            &nblock,
            |b, _| {
                b.iter(|| serialize::decode(black_box(&bytes)).unwrap());
            },
        );
    }
    g.finish();
}

/// The collective-write list merge (O(Σ Nblock)) vs the mergeview
/// coverage test (O(depth)).
fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    for nblock in [1024u64, 16384] {
        // 4 interleaved single-strided views, as 4 ranks produce
        let lists: Vec<OlList> = (0..4)
            .map(|p| {
                let d = Datatype::vector(nblock, 1, 4, &Datatype::double()).unwrap();
                let mut l = OlList::flatten(&d, 1);
                for s in &mut l.segs {
                    s.offset += p * 8;
                }
                l
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("ol_list_merge", nblock),
            &nblock,
            |b, _| {
                b.iter(|| {
                    let refs: Vec<&OlList> = lists.iter().collect();
                    OlList::merge_lists(black_box(&refs))
                });
            },
        );

        // the mergeview answer to the same question
        let fields: Vec<lio_datatype::Field> = (0..4)
            .map(|p| lio_datatype::Field {
                disp: p * 8,
                count: 1,
                child: Datatype::vector(nblock, 1, 4, &Datatype::double()).unwrap(),
            })
            .collect();
        let merge = Datatype::struct_type(fields).unwrap();
        let span = merge.extent();
        g.bench_with_input(
            BenchmarkId::new("mergeview_coverage", nblock),
            &nblock,
            |b, _| {
                b.iter(|| {
                    lio_datatype::bytes_below_tiled(black_box(&merge), span as i64)
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_flatten, bench_merge
}
criterion_main!(benches);
