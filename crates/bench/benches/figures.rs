//! One representative point per paper figure, as criterion benchmarks.
//! The full sweeps (every x-axis value, every series) are produced by the
//! `repro` binary; these benches track regressions at the most
//! discriminating points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lio_core::Engine;
use lio_noncontig::{run, Access, Config, Pattern};

fn cfg(
    nprocs: usize,
    nblock: u64,
    sblock: u64,
    access: Access,
    engine: Engine,
    data: u64,
) -> Config {
    Config {
        nprocs,
        nblock,
        sblock,
        pattern: Pattern::NcNc,
        access,
        engine,
        bytes_per_proc: data,
        verify: false,
        cb_buffer: None,
        ind_buffer: None,
        reps: 3,
    }
}

/// Figure 5 point: independent, Nblock = 4096, Sblock = 8, P = 2.
fn fig5_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_nblock4096");
    let data = 512u64 << 10;
    g.throughput(Throughput::Bytes(data));
    g.sample_size(10);
    for (engine, name) in [(Engine::ListBased, "list_based"), (Engine::Listless, "listless")] {
        g.bench_with_input(BenchmarkId::new(name, "nc-nc"), &engine, |b, &e| {
            b.iter(|| run(&cfg(2, 4096, 8, Access::Independent, e, data)));
        });
    }
    g.finish();
}

/// Figure 6 point: collective, Nblock = 1024, Sblock = 8, P = 8.
fn fig6_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_nblock1024");
    let data = 256u64 << 10;
    g.throughput(Throughput::Bytes(data));
    g.sample_size(10);
    for (engine, name) in [(Engine::ListBased, "list_based"), (Engine::Listless, "listless")] {
        g.bench_with_input(BenchmarkId::new(name, "nc-nc"), &engine, |b, &e| {
            b.iter(|| run(&cfg(8, 1024, 8, Access::Collective, e, data)));
        });
    }
    g.finish();
}

/// Figure 7 crossover points: Sblock = 8 vs 4096 (independent).
fn fig7_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_sblock");
    let data = 512u64 << 10;
    g.throughput(Throughput::Bytes(data));
    g.sample_size(10);
    for sblock in [8u64, 4096] {
        for (engine, name) in
            [(Engine::ListBased, "list_based"), (Engine::Listless, "listless")]
        {
            g.bench_with_input(BenchmarkId::new(name, sblock), &engine, |b, &e| {
                b.iter(|| run(&cfg(2, 8, sblock, Access::Independent, e, data)));
            });
        }
    }
    g.finish();
}

/// Figure 8 point: collective scaling at P = 4.
fn fig8_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_p4");
    let data = 256u64 << 10;
    g.throughput(Throughput::Bytes(data));
    g.sample_size(10);
    for (engine, name) in [(Engine::ListBased, "list_based"), (Engine::Listless, "listless")] {
        g.bench_with_input(BenchmarkId::new(name, "nc-nc"), &engine, |b, &e| {
            b.iter(|| run(&cfg(4, 64, 2048, Access::Collective, e, data)));
        });
    }
    g.finish();
}

criterion_group!(benches, fig5_point, fig6_point, fig7_points, fig8_point);
criterion_main!(benches);
