//! One representative point per paper figure.
//! The full sweeps (every x-axis value, every series) are produced by the
//! `repro` binary; these benches track regressions at the most
//! discriminating points.

use lio_bench::harness::Group;
use lio_core::Engine;
use lio_noncontig::{run, Access, Config, Pattern};

fn cfg(
    nprocs: usize,
    nblock: u64,
    sblock: u64,
    access: Access,
    engine: Engine,
    data: u64,
) -> Config {
    Config {
        nprocs,
        nblock,
        sblock,
        pattern: Pattern::NcNc,
        access,
        engine,
        bytes_per_proc: data,
        verify: false,
        cb_buffer: None,
        ind_buffer: None,
        reps: 3,
    }
}

const ENGINES: [(Engine, &str); 2] = [
    (Engine::ListBased, "list_based"),
    (Engine::Listless, "listless"),
];

/// Figure 5 point: independent, Nblock = 4096, Sblock = 8, P = 2.
fn fig5_point() {
    let mut g = Group::new("fig5_nblock4096");
    let data = 512u64 << 10;
    g.throughput_bytes(data);
    g.sample_size(10);
    for (engine, name) in ENGINES {
        g.bench(format!("{name}/nc-nc"), || {
            run(&cfg(2, 4096, 8, Access::Independent, engine, data));
        });
    }
}

/// Figure 6 point: collective, Nblock = 1024, Sblock = 8, P = 8.
fn fig6_point() {
    let mut g = Group::new("fig6_nblock1024");
    let data = 256u64 << 10;
    g.throughput_bytes(data);
    g.sample_size(10);
    for (engine, name) in ENGINES {
        g.bench(format!("{name}/nc-nc"), || {
            run(&cfg(8, 1024, 8, Access::Collective, engine, data));
        });
    }
}

/// Figure 7 crossover points: Sblock = 8 vs 4096 (independent).
fn fig7_points() {
    let mut g = Group::new("fig7_sblock");
    let data = 512u64 << 10;
    g.throughput_bytes(data);
    g.sample_size(10);
    for sblock in [8u64, 4096] {
        for (engine, name) in ENGINES {
            g.bench(format!("{name}/{sblock}"), || {
                run(&cfg(2, 8, sblock, Access::Independent, engine, data));
            });
        }
    }
}

/// Figure 8 point: collective scaling at P = 4.
fn fig8_point() {
    let mut g = Group::new("fig8_p4");
    let data = 256u64 << 10;
    g.throughput_bytes(data);
    g.sample_size(10);
    for (engine, name) in ENGINES {
        g.bench(format!("{name}/nc-nc"), || {
            run(&cfg(4, 64, 2048, Access::Collective, engine, data));
        });
    }
}

fn main() {
    fig5_point();
    fig6_point();
    fig7_points();
    fig8_point();
}
