//! BTIO (Table 3) benchmark points: one class-S step, both engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lio_btio::{run, volume_stats, Class, Config, Engine};

fn btio_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("btio_class_s");
    let vol = volume_stats(Class::S, 2).drun;
    g.throughput(Throughput::Bytes(vol));
    g.sample_size(10);
    for (engine, name) in [(Engine::ListBased, "list_based"), (Engine::Listless, "listless")] {
        g.bench_with_input(BenchmarkId::new(name, "p4"), &engine, |b, &e| {
            b.iter(|| {
                let mut cfg = Config::new(Class::S, 4);
                cfg.nsteps = 2;
                cfg.compute_sweeps = 0;
                cfg.engine = e;
                run(&cfg)
            });
        });
    }
    g.finish();
}

fn btio_compute_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("btio_no_io");
    g.sample_size(10);
    g.bench_function("class_s_p4", |b| {
        b.iter(|| {
            let mut cfg = Config::new(Class::S, 4);
            cfg.nsteps = 2;
            cfg.compute_sweeps = 1;
            cfg.io_enabled = false;
            run(&cfg)
        });
    });
    g.finish();
}

criterion_group!(benches, btio_step, btio_compute_only);
criterion_main!(benches);
