//! BTIO (Table 3) benchmark points: one class-S step, both engines.

use lio_bench::harness::Group;
use lio_btio::{run, volume_stats, Class, Config, Engine};

fn btio_step() {
    let mut g = Group::new("btio_class_s");
    let vol = volume_stats(Class::S, 2).drun;
    g.throughput_bytes(vol);
    g.sample_size(10);
    for (engine, name) in [
        (Engine::ListBased, "list_based"),
        (Engine::Listless, "listless"),
    ] {
        g.bench(format!("{name}/p4"), || {
            let mut cfg = Config::new(Class::S, 4);
            cfg.nsteps = 2;
            cfg.compute_sweeps = 0;
            cfg.engine = engine;
            run(&cfg);
        });
    }
}

fn btio_compute_only() {
    let mut g = Group::new("btio_no_io");
    g.sample_size(10);
    g.bench("class_s_p4", || {
        let mut cfg = Config::new(Class::S, 4);
        cfg.nsteps = 2;
        cfg.compute_sweeps = 1;
        cfg.io_enabled = false;
        run(&cfg);
    });
}

fn main() {
    btio_step();
    btio_compute_only();
}
