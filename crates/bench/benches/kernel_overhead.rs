//! CI gate: the pack kernels must not tax shapes they cannot help.
//!
//! On a *flat contiguous* type the compiled program is a single huge
//! `Blocks` frame whose block size sits far above the fixed-kernel
//! classes, so `Sel::select` records "not eligible" at compile time and
//! the interpreter must take the plain memcpy path untouched. Whatever
//! the kernel layer adds (the per-call mode load, the per-frame
//! eligibility check) must stay within 2% of a forced-scalar run.
//! Exits non-zero on a sustained violation so `ci.sh` can gate on it.

use lio_bench::harness::Group;
use lio_datatype::kernels::{self, Mode};
use lio_datatype::Datatype;
use std::hint::black_box;

const TOLERANCE: f64 = 1.02;
const ATTEMPTS: usize = 5;

fn main() {
    // one contiguous 4 MiB run: the degenerate flat case the kernels
    // must not engage on
    let d = Datatype::contiguous(4 << 20, &Datatype::byte()).unwrap();
    let src = vec![0x7Eu8; d.extent() as usize];
    let total = d.size() as usize;
    let mut out = vec![0u8; total];
    let prog = d.program();

    let mut g = Group::new("kernel_overhead");
    g.sample_size(20);
    g.throughput_bytes(total as u64);

    let mut worst = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        kernels::force(Mode::Scalar);
        let scalar = g.bench(format!("scalar/attempt{attempt}"), || {
            prog.pack_into(black_box(&src), 0, 1, 0, black_box(&mut out));
        });
        kernels::force(Mode::Auto);
        let auto = g.bench(format!("auto/attempt{attempt}"), || {
            prog.pack_into(black_box(&src), 0, 1, 0, black_box(&mut out));
        });
        let ratio = auto.min_ns / scalar.min_ns;
        worst = worst.min(ratio);
        println!("kernel_overhead: auto/scalar min-ratio {ratio:.4} (attempt {attempt})");
        if ratio <= TOLERANCE {
            println!("kernel_overhead: PASS ({ratio:.4} <= {TOLERANCE})");
            return;
        }
    }
    eprintln!(
        "kernel_overhead: FAIL — auto kernel mode {worst:.4}x the forced-scalar pack on a \
         flat-contiguous type across {ATTEMPTS} attempts (gate {TOLERANCE})"
    );
    std::process::exit(1);
}
