//! Cost of leaving the self-tuner armed on a workload it cannot improve.
//!
//! The ci gate behind `Hints::autotune`: a collective whose knobs are
//! already optimal (listless, unpipelined, cb matching the file span on
//! memory-speed storage) pays for per-op planning, outcome aggregation
//! and signal classification but must get nothing wrong — wall overhead
//! within 2% of the tuner-off baseline, and zero *net* knob movement
//! once settled (transient trial/revert probes are the hill-climb doing
//! its job; a committed drift away from the optimum is a bug).
//!
//! Both arms run with the obs registry enabled (arming the tuner
//! auto-enables it, so the fair baseline carries the same phase-clock
//! cost) and with profiling off. Two tuner-off runs bound the host noise
//! floor, `obs_overhead`-style; the enabled arm reuses ONE shared file
//! across samples so the tuner settles during warmup and the measured
//! ops see the steady state.

use lio_bench::harness::Group;
use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;

const NPROCS: usize = 4;
const SBLOCK: u64 = 2048;
const NBLOCK: u64 = 512;

/// Interleaved across exactly `NPROCS` slots: span = 4 MiB, whose
/// `cb_target` (1 MiB) sits within the tuner's 4x hysteresis band around
/// the default 4 MiB cb — no geometry signal fires.
fn interleaved_ft() -> Datatype {
    let block = Datatype::contiguous(SBLOCK, &Datatype::byte()).unwrap();
    let v = Datatype::vector(NBLOCK, 1, NPROCS as i64, &block).unwrap();
    let extent = NBLOCK * NPROCS as u64 * SBLOCK;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// One 4-rank collective write against a persistent shared file. The
/// file (and with it the tuner state) survives across calls, so op
/// indices keep counting and settled knobs stay settled.
fn op(shared: &SharedFile, hints: Hints) {
    let sh = shared.clone();
    World::run(NPROCS, move |comm| {
        let me = comm.rank() as u64;
        let mut f = File::open(comm, sh.clone(), hints).expect("open");
        f.set_view(me * SBLOCK, Datatype::byte(), interleaved_ft())
            .expect("set_view");
        let total = NBLOCK * SBLOCK;
        let data = vec![me as u8 + 1; total as usize];
        f.write_at_all(0, &data, total, &Datatype::byte())
            .expect("write");
    });
}

fn main() {
    lio_obs::set_enabled(true);
    lio_obs::profile::set_enabled(false);
    let total = NBLOCK * SBLOCK * NPROCS as u64;

    let mut g = Group::new("autotune_overhead");
    g.sample_size(10).throughput_bytes(total);

    let off = SharedFile::new(MemFile::new());
    // untimed process warmup (thread pools, allocator) so run-to-run
    // delta measures the host, not first-touch costs
    for _ in 0..4 {
        op(&off, Hints::default());
    }
    let base_a = g.bench("coll_write_tuner_off_a", || op(&off, Hints::default()));
    let base_b = g.bench("coll_write_tuner_off_b", || op(&off, Hints::default()));

    let tuned = SharedFile::new(MemFile::new());
    let hints = Hints::default().autotune(true);
    // settle before measuring: enough ops for any probe to trial, revert
    // and for the quiet counter to declare the knobs stable
    for _ in 0..16 {
        op(&tuned, hints);
    }
    let enabled = g.bench("coll_write_tuner_on", || op(&tuned, hints));

    let report = tuned.tune_report().expect("tuner was armed");
    let base = base_a.median_ns.min(base_b.median_ns);
    let noise_pct = (base_a.median_ns - base_b.median_ns).abs() / base * 100.0;
    let enabled_pct = (enabled.median_ns - base) / base * 100.0;
    println!("tuner-off run-to-run delta: {noise_pct:.2}% (noise floor)");
    println!("tuner-on vs tuner-off:      {enabled_pct:+.2}%");
    println!(
        "tuner: settled={} decisions={} initial={} current={}",
        report.settled,
        report.decisions.len(),
        report.initial,
        report.current
    );

    let mut fail = false;
    if !report.settled {
        println!("FAIL: tuner never settled on an already-optimal workload");
        fail = true;
    }
    if report.current != report.initial {
        println!(
            "FAIL: net knob movement on an already-optimal workload: {} -> {}",
            report.initial, report.current
        );
        fail = true;
    }
    let verdict = if enabled_pct <= 2.0 {
        "PASS"
    } else if noise_pct >= 2.0 {
        "CHECK (noisy host)"
    } else {
        fail = true;
        "FAIL"
    };
    println!("tuner-on-overhead (<=2%): {verdict}");
    if fail {
        std::process::exit(1);
    }
}
