//! Pipelined vs monolithic two-phase collective writes, shared between
//! the `pipeline` cargo bench and `repro bench` so both produce the same
//! schema-versioned `BENCH_pipeline.json`. Three sections:
//!
//! * timed `Group` comparisons on throttled in-memory storage (latency
//!   ≥ 100 µs per file access, the regime the pipeline targets),
//!   pipeline off/on × both engines at equal `cb_buffer_size` — the
//!   headline wall-clock improvement;
//! * the same collective on the `os` submission-queue backend — a real
//!   kernel-backed file (under `LIO_OS_DIR`) driven through the worker
//!   threadpool — recorded as the `{engine}/os/{off,on}` real-disk
//!   column;
//! * an instrumented overlap proof: with the `lio-obs` registry
//!   recording, a run whose `exchange_ns + io_ns` exceeds its wall time
//!   can only have overlapped the storage lanes with the exchange.
//!
//! The access pattern is cyclically interleaved with one block slot per
//! stride left unwritten, so every window is read-modify-write and both
//! storage lanes (pre-read and write-back) carry traffic.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::harness::Group;
use crate::schema::{self, Entry};
use lio_core::{BackendKind, File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::{MemFile, Throttle, ThrottledFile};

const SBLOCK: u64 = 4096;
const NBLOCK: u64 = 64;
const LAT_US: u64 = 1000;

/// High per-access latency, high bandwidth: op cost is dominated by
/// latency, as on NFS-class storage. Must sit well above the throttle's
/// spin-only regime (2× its 100 µs spin tail) so waiting genuinely
/// yields the CPU and lanes can overlap on few-core hosts.
fn slow_store() -> Throttle {
    Throttle {
        read_bw: 2e9,
        write_bw: 2e9,
        latency: Duration::from_micros(LAT_US),
    }
}

/// Interleaved filetype over `slots` block slots per stride; with
/// `slots = nprocs + 1` one slot per stride stays unwritten (RMW).
fn interleaved_ft(slots: u64) -> Datatype {
    let block = Datatype::contiguous(SBLOCK, &Datatype::byte()).unwrap();
    let v = Datatype::vector(NBLOCK, 1, slots as i64, &block).unwrap();
    let extent = NBLOCK * slots * SBLOCK;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: 0,
            count: 1,
            child: v,
        },
        Field {
            disp: extent as i64,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .unwrap()
}

/// One collective write of `NBLOCK * SBLOCK` bytes per rank on the given
/// storage; returns the across-ranks wall time of the collective.
fn collective_write_on(shared: SharedFile, hints: Hints, nprocs: usize) -> f64 {
    let span = (NBLOCK * (nprocs as u64 + 1) + 1) * SBLOCK;
    shared.storage().set_len(span).expect("prefault");
    World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let slots = comm.size() as u64 + 1; // one hole per stride -> RMW
        let mut f = File::open(comm, shared.clone(), hints).expect("open");
        f.set_view(me * SBLOCK, Datatype::byte(), interleaved_ft(slots))
            .expect("set_view");
        let total = NBLOCK * SBLOCK;
        let data = vec![me as u8 + 1; total as usize];
        comm.barrier();
        let t = Instant::now();
        f.write_at_all(0, &data, total, &Datatype::byte())
            .expect("write");
        comm.barrier();
        comm.allmax_f64(t.elapsed().as_secs_f64())
    })[0]
}

/// The latency-bound configuration the pipeline targets: throttled
/// in-memory storage.
fn collective_write(hints: Hints, nprocs: usize) -> f64 {
    collective_write_on(
        SharedFile::new(ThrottledFile::new(MemFile::new(), slow_store())),
        hints,
        nprocs,
    )
}

/// A fresh real-file backend (submission queue over an unlinked temp
/// file in `LIO_OS_DIR`), one per run so every iteration starts cold.
fn os_storage() -> SharedFile {
    SharedFile::for_backend(BackendKind::Os).expect("os backend storage")
}

fn bench_pipeline_write(entries: &mut Vec<Entry>) {
    let nprocs = 4;
    let cb = 32usize << 10;
    let total = NBLOCK * SBLOCK * nprocs as u64;
    let mut g = Group::new("pipeline_write");
    g.sample_size(5);
    for (engine, ename) in [
        (Hints::list_based(), "list_based"),
        (Hints::listless(), "listless"),
    ] {
        g.throughput_bytes(total);
        let s = g.bench(format!("{ename}/off"), || {
            collective_write(engine.cb_buffer(cb), nprocs);
        });
        entries.push(Entry::new(
            "pipeline_write",
            format!("{ename}/off"),
            "wall_ns",
            s.median_ns,
            "ns",
        ));
        g.throughput_bytes(total);
        let s = g.bench(format!("{ename}/on"), || {
            collective_write(
                engine.cb_buffer(cb).pipelined(true).pipeline_depth(2),
                nprocs,
            );
        });
        entries.push(Entry::new(
            "pipeline_write",
            format!("{ename}/on"),
            "wall_ns",
            s.median_ns,
            "ns",
        ));
    }
    // The real-disk column: the same collective through the `os`
    // backend's worker threadpool (whole-window batch submission on the
    // pipelined runs), against a real kernel-backed file.
    for (engine, ename) in [
        (Hints::list_based(), "list_based"),
        (Hints::listless(), "listless"),
    ] {
        for (pipe, pname) in [(false, "off"), (true, "on")] {
            let base = engine.cb_buffer(cb).backend(BackendKind::Os);
            let hints = if pipe {
                base.pipelined(true).pipeline_depth(2)
            } else {
                base
            };
            g.throughput_bytes(total);
            let s = g.bench(format!("{ename}/os/{pname}"), || {
                collective_write_on(os_storage(), hints, nprocs);
            });
            entries.push(Entry::new(
                "pipeline_write",
                format!("{ename}/os/{pname}"),
                "wall_ns",
                s.median_ns,
                "ns",
            ));
        }
    }
}

/// Instrumented single runs: wall-clock improvement and the overlap
/// proof, per engine, written to `results/pipeline.csv`.
fn overlap_proof(entries: &mut Vec<Entry>) {
    let nprocs = 4;
    let cb = 32usize << 10;
    println!(
        "# pipeline: instrumented collective write, P={nprocs}, cb={cb} B, {LAT_US} us/op storage"
    );
    println!(
        "{:<11} {:<4} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "engine", "pipe", "wall ms", "exch ms", "io ms", "pack ms", "ovlp ms"
    );
    let mut csv =
        String::from("engine,pipeline,wall_ms,exchange_ms,io_ms,pack_ms,overlap_ms,improvement\n");
    for (base, ename) in [
        (Hints::list_based(), "list_based"),
        (Hints::listless(), "listless"),
    ] {
        let mut walls = [0f64; 2];
        for (pipe, hints) in [
            (false, base.cb_buffer(cb)),
            (true, base.cb_buffer(cb).pipelined(true).pipeline_depth(2)),
        ] {
            lio_obs::reset();
            lio_obs::set_enabled(true);
            let wall = collective_write(hints, nprocs);
            lio_obs::set_enabled(false);
            let snap = lio_obs::snapshot();
            let ms = |c: &str| snap.counter(c) as f64 / 1e6;
            let (exch, io, pack, ovlp) = (
                ms("core.coll.write.exchange_ns"),
                ms("core.coll.write.io_ns"),
                ms("core.coll.write.pack_ns"),
                ms("core.coll.write.overlap_ns"),
            );
            walls[pipe as usize] = wall;
            let improvement = if pipe {
                (walls[0] - walls[1]) / walls[0] * 100.0
            } else {
                0.0
            };
            println!(
                "{:<11} {:<4} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                ename,
                if pipe { "on" } else { "off" },
                wall * 1e3,
                exch,
                io,
                pack,
                ovlp
            );
            if pipe {
                println!(
                    "  {ename}: wall improved {improvement:.1}% with pipelining \
                     ({} the >= 20% target)",
                    if improvement >= 20.0 {
                        "meets"
                    } else {
                        "MISSES"
                    }
                );
            }
            writeln!(
                csv,
                "{ename},{},{:.3},{exch:.3},{io:.3},{pack:.3},{ovlp:.3},{improvement:.1}",
                if pipe { "on" } else { "off" },
                wall * 1e3,
            )
            .unwrap();
            let cfg = format!("{ename}/{}", if pipe { "on" } else { "off" });
            entries.push(Entry::new(
                "overlap_proof",
                cfg.clone(),
                "wall_ns",
                wall * 1e9,
                "ns",
            ));
            for (metric, v) in [
                ("exchange_ns", exch),
                ("io_ns", io),
                ("pack_ns", pack),
                ("overlap_ns", ovlp),
            ] {
                entries.push(Entry::new(
                    "overlap_proof",
                    cfg.clone(),
                    metric,
                    v * 1e6,
                    "ns",
                ));
            }
        }
    }

    // Single-rank overlap proof: with one rank the exchange is free, so
    // phases-sum > wall isolates exactly the storage-lane overlap
    // (`exchange_ns + io_ns > wall` cannot hold without it).
    for (base, ename) in [
        (Hints::list_based(), "list_based"),
        (Hints::listless(), "listless"),
    ] {
        lio_obs::reset();
        lio_obs::set_enabled(true);
        let wall = collective_write(base.cb_buffer(cb).pipelined(true).pipeline_depth(2), 1);
        lio_obs::set_enabled(false);
        let snap = lio_obs::snapshot();
        let sum_ms = (snap.counter("core.coll.write.exchange_ns")
            + snap.counter("core.coll.write.io_ns")) as f64
            / 1e6;
        let wall_ms = wall * 1e3;
        println!(
            "  {ename}: overlap proof (P=1): exchange_ns + io_ns = {sum_ms:.2} ms {} \
             wall = {wall_ms:.2} ms",
            if sum_ms > wall_ms {
                ">"
            } else {
                "<= (NO OVERLAP)"
            }
        );
        writeln!(csv, "{ename},proof_p1,{wall_ms:.3},,{sum_ms:.3},,,").unwrap();
    }

    // cargo runs benches from the package dir; put the CSV in the
    // workspace-root results/ next to the repro outputs.
    let dir = schema::workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(dir.join("pipeline.csv"), &csv).expect("write csv");
    println!("  -> results/pipeline.csv");
}

/// Run every section and write the schema-versioned artifact. Called by
/// both `cargo bench --bench pipeline` and `repro bench`.
pub fn run() {
    let mut entries = Vec::new();
    bench_pipeline_write(&mut entries);
    overlap_proof(&mut entries);
    schema::write_bench_json(
        "BENCH_pipeline.json",
        &entries,
        &[(
            "cores",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .to_string(),
        )],
    );
}
