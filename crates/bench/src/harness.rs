//! A minimal benchmark harness: calibrated batches, median-of-samples.
//!
//! Each measurement calibrates an iteration count so one sample runs for
//! at least [`TARGET_SAMPLE`], takes `sample_size` samples, and reports
//! the median time per iteration (plus throughput when the group declares
//! bytes moved). Set `LIO_BENCH_FAST=1` to shrink samples for smoke runs.

use std::time::{Duration, Instant};

const TARGET_SAMPLE: Duration = Duration::from_millis(5);
const FAST_SAMPLE: Duration = Duration::from_micros(500);

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
}

fn fast_mode() -> bool {
    std::env::var("LIO_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A named group of related benchmarks, printed as `group/id` lines.
pub struct Group {
    name: String,
    sample_size: usize,
    throughput_bytes: Option<u64>,
}

impl Group {
    pub fn new(name: impl Into<String>) -> Group {
        Group {
            name: name.into(),
            sample_size: 20,
            throughput_bytes: None,
        }
    }

    /// Number of samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Bytes moved per iteration, for throughput reporting.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Time `f`, print a report line, and return the stats.
    pub fn bench<F: FnMut()>(&mut self, id: impl std::fmt::Display, mut f: F) -> Stats {
        let fast = fast_mode();
        let target = if fast { FAST_SAMPLE } else { TARGET_SAMPLE };
        let samples = if fast {
            self.sample_size.min(5)
        } else {
            self.sample_size
        };

        // Warm up and calibrate the per-sample iteration count.
        let mut iters: u64 = 1;
        let per_iter_estimate = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = t0.elapsed();
            if dt >= target {
                break dt.as_nanos() as f64 / iters as f64;
            }
            let per = (dt.as_nanos() as f64 / iters as f64).max(1.0);
            let needed = (target.as_nanos() as f64 / per).ceil() as u64;
            iters = needed.clamp(iters * 2, iters.saturating_mul(64));
        };
        let _ = per_iter_estimate;

        let mut per_iter: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let stats = Stats {
            min_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        };
        self.report(&id.to_string(), stats);
        stats
    }

    fn report(&self, id: &str, s: Stats) {
        let mut line = format!(
            "{}/{:<32} median {:>12}  (min {})",
            self.name,
            id,
            fmt_ns(s.median_ns),
            fmt_ns(s.min_ns)
        );
        if let Some(bytes) = self.throughput_bytes {
            let gbps = bytes as f64 / s.median_ns;
            line.push_str(&format!("  {gbps:8.3} GB/s"));
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        std::env::set_var("LIO_BENCH_FAST", "1");
        let mut g = Group::new("harness_test");
        g.sample_size(3);
        let s = g.bench("spin", || {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert!(s.min_ns > 0.0);
        assert!(s.median_ns >= s.min_ns);
    }
}
