//! Versioned benchmark-result schema.
//!
//! Every `BENCH_*.json` artifact at the workspace root is a flat list of
//! `{bench, config, metric, value, unit, commit}` entries under a
//! `schema_version` header, so runs from different commits can be
//! compared mechanically: `repro bench-compare <baseline> <current>`
//! matches entries by `(bench, config, metric)` and warns when a
//! wall-time metric regressed by more than a threshold. Keeping the
//! schema stable (append entries, never rename fields) is what makes the
//! committed baselines a perf trajectory rather than a pile of logs.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Bump only on incompatible field changes; `bench-compare` refuses to
/// diff files with mismatched versions.
pub const SCHEMA_VERSION: u64 = 1;

/// One measurement: which benchmark, which configuration of it, which
/// metric, and the measured value. Time metrics must use an `ns`/`ms`
/// unit so the regression comparator can find them.
pub struct Entry {
    pub bench: String,
    pub config: String,
    pub metric: String,
    pub value: f64,
    pub unit: &'static str,
}

impl Entry {
    pub fn new(
        bench: impl Into<String>,
        config: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
        unit: &'static str,
    ) -> Entry {
        Entry {
            bench: bench.into(),
            config: config.into(),
            metric: metric.into(),
            value,
            unit,
        }
    }
}

/// The current git commit (short hash), or `"unknown"` outside a
/// repository — bench artifacts must stay writable from exported
/// tarballs.
pub fn commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Render `entries` as a schema-versioned JSON document. `context` pairs
/// (e.g. core counts) land in a `context` object, informational only —
/// the comparator ignores them.
pub fn render(entries: &[Entry], context: &[(&str, String)]) -> String {
    let commit = commit();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"commit\": \"{commit}\",");
    if !context.is_empty() {
        json.push_str("  \"context\": {");
        for (i, (k, v)) in context.iter().enumerate() {
            let sep = if i + 1 == context.len() { "" } else { ", " };
            let _ = write!(json, "\"{k}\": {v}{sep}");
        }
        json.push_str("},\n");
    }
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"bench\": \"{}\", \"config\": \"{}\", \"metric\": \"{}\", \
             \"value\": {}, \"unit\": \"{}\", \"commit\": \"{commit}\"}}{sep}",
            e.bench,
            e.config,
            e.metric,
            fmt_value(e.value),
            e.unit
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// JSON has no NaN/Inf literals; degenerate measurements become null.
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// The workspace root, from the bench crate's manifest dir when cargo
/// provides it (benches run from the package directory), else cwd.
pub fn workspace_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Write a `BENCH_*.json` artifact at the workspace root.
pub fn write_bench_json(filename: &str, entries: &[Entry], context: &[(&str, String)]) {
    let path = workspace_root().join(filename);
    std::fs::write(&path, render(entries, context))
        .unwrap_or_else(|e| panic!("write {filename}: {e}"));
    println!("  -> {filename}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_versioned_json() {
        let entries = vec![
            Entry::new("pipeline_write", "listless/on", "wall_ns", 1234.5, "ns"),
            Entry::new("pack", "treewalk/flat", "median_ns", f64::NAN, "ns"),
        ];
        let json = render(&entries, &[("cores", "8".to_string())]);
        let v = lio_obs::json::parse(&json).expect("schema output parses");
        assert_eq!(
            v.get("schema_version").and_then(|v| v.as_f64()),
            Some(SCHEMA_VERSION as f64)
        );
        let rows = v.get("entries").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("metric").and_then(|m| m.as_str()),
            Some("wall_ns")
        );
        assert_eq!(rows[0].get("value").and_then(|m| m.as_f64()), Some(1234.5));
        // NaN degraded to null, not an invalid literal
        assert!(rows[1].get("value").is_some_and(|v| v.as_f64().is_none()));
    }
}
