//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro fig5 [--quick] [--data BYTES]
//! repro fig6 | fig7 | fig8 | table1 | table2 | table3 | overheads | all
//! repro metrics
//! ```
//!
//! Each experiment prints the paper's rows/series and writes a CSV under
//! `results/`. Absolute numbers differ from the paper's SX-6/SX-7 testbed
//! (see DESIGN.md); the *shape* — who wins, by what factor, where the
//! crossovers fall — is the reproduction target recorded in
//! EXPERIMENTS.md.
//!
//! `repro metrics` runs one collective write + read per engine with the
//! `lio-obs` registry recording and dumps the full cross-layer metric
//! snapshots as JSON (`results/metrics.json` and `BENCH_metrics.json`):
//! file accesses, bytes moved, exchange-phase bytes (list metadata vs
//! data), and the per-phase two-phase timing breakdown.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use lio_btio::{volume_stats, Class};
use lio_core::Engine;
use lio_noncontig::{Access, Config, Pattern};

struct Opts {
    quick: bool,
    data: Option<u64>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| usage());
    // subcommands taking positional paths, not figure options
    match cmd.as_str() {
        "validate-json" => {
            let path = args.next().unwrap_or_else(|| usage());
            validate_json(&path);
            return;
        }
        "bench-compare" => {
            let mut fail = false;
            let mut paths = Vec::new();
            for a in args.by_ref() {
                match a.as_str() {
                    "--fail" => fail = true,
                    _ => paths.push(a),
                }
            }
            let [baseline, current] = paths.as_slice() else {
                usage()
            };
            bench_compare(baseline, current, fail);
            return;
        }
        _ => {}
    }
    let mut opts = Opts {
        quick: false,
        data: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--data" => {
                opts.data = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }
    fs::create_dir_all("results").expect("create results dir");
    match cmd.as_str() {
        "fig5" => fig5(&opts),
        "fig6" => fig6(&opts),
        "fig7" => fig7(&opts),
        "fig8" => fig8(&opts),
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(&opts),
        "overheads" => overheads(),
        "multidim" => multidim(&opts),
        "ablation" => ablation(&opts),
        "throttle" => throttle(&opts),
        "tileio" => tileio(&opts),
        "metrics" => metrics(&opts),
        "top" => top_cmd(&opts),
        "trace" => trace_cmd(&opts),
        "profile" => profile_cmd(&opts),
        "bench" => bench_cmd(&opts),
        "autotune" => autotune_cmd(&opts),
        "all" => {
            fig5(&opts);
            fig6(&opts);
            fig7(&opts);
            fig8(&opts);
            table1();
            table2();
            table3(&opts);
            overheads();
            multidim(&opts);
            ablation(&opts);
            throttle(&opts);
            tileio(&opts);
            metrics(&opts);
            trace_cmd(&opts);
            profile_cmd(&opts);
        }
        _ => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: repro fig5|fig6|fig7|fig8|table1|table2|table3|overheads|multidim|ablation|throttle|tileio|metrics|top|trace|profile|bench|autotune|all \
         [--quick] [--data BYTES]\n       repro validate-json <file>\n       repro bench-compare [--fail] <baseline.json> <current.json>"
    );
    std::process::exit(2);
}

const ENGINES: [(Engine, &str); 2] = [
    (Engine::ListBased, "list-based"),
    (Engine::Listless, "listless"),
];
const PATTERNS: [Pattern; 3] = [Pattern::NcNc, Pattern::NcC, Pattern::CNc];

fn save(path: &str, csv: &str) {
    fs::write(Path::new(path), csv).expect("write csv");
    println!("  -> {path}");
}

/// Run one noncontig config and return (write Bpp, read Bpp) in MB/s.
fn point(cfg: &Config) -> (f64, f64) {
    // one warmup at reduced volume, then the measured run
    let mut warm = cfg.clone();
    warm.bytes_per_proc = (cfg.bytes_per_proc / 4).max(cfg.nblock * cfg.sblock);
    lio_noncontig::run(&warm);
    let r = lio_noncontig::run(cfg);
    (r.write_bpp, r.read_bpp)
}

/// The figure-5/6 sweep skeleton: Bpp vs Nblock for six series.
fn nblock_sweep(name: &str, access: Access, nprocs: usize, sblock: u64, opts: &Opts) {
    let nblocks: &[u64] = if opts.quick {
        &[16, 256, 4096]
    } else {
        &[16, 64, 256, 1024, 4096, 16384]
    };
    let data = opts
        .data
        .unwrap_or(if opts.quick { 256 << 10 } else { 1 << 20 });
    println!(
        "# {name}: Bpp [MB/s] vs Nblock ({access:?}, P={nprocs}, Sblock={sblock} B, {data} B/proc)"
    );
    let mut csv = String::from("nblock,engine,pattern,write_bpp,read_bpp\n");
    println!(
        "{:>8} {:<11} {:<6} {:>12} {:>12}",
        "Nblock", "engine", "pat", "write Bpp", "read Bpp"
    );
    for &nblock in nblocks {
        for (engine, ename) in ENGINES {
            for pattern in PATTERNS {
                let cfg = Config {
                    nprocs,
                    nblock,
                    sblock,
                    pattern,
                    access,
                    engine,
                    bytes_per_proc: data,
                    verify: false,
                    cb_buffer: None,
                    ind_buffer: None,
                    reps: 3,
                };
                let (w, r) = point(&cfg);
                println!(
                    "{:>8} {:<11} {:<6} {:>12.2} {:>12.2}",
                    nblock,
                    ename,
                    pattern.label(),
                    w,
                    r
                );
                writeln!(csv, "{nblock},{ename},{},{w:.3},{r:.3}", pattern.label()).unwrap();
            }
        }
    }
    save(&format!("results/{name}.csv"), &csv);
}

/// Figure 5: independent write/read, Sblock = 8 B, P = 2.
fn fig5(opts: &Opts) {
    nblock_sweep("fig5", Access::Independent, 2, 8, opts);
}

/// Figure 6: collective write/read, Sblock = 8 B, P = 8.
fn fig6(opts: &Opts) {
    nblock_sweep("fig6", Access::Collective, 8, 8, opts);
}

/// Figure 7: Bpp vs Sblock, independent, Nblock = 8, P = 2.
fn fig7(opts: &Opts) {
    let sblocks: &[u64] = if opts.quick {
        &[4, 64, 2048, 16384]
    } else {
        &[4, 16, 64, 256, 1024, 4096, 16384]
    };
    let data = opts
        .data
        .unwrap_or(if opts.quick { 256 << 10 } else { 1 << 20 });
    println!("# fig7: Bpp [MB/s] vs Sblock (independent, P=2, Nblock=8, {data} B/proc)");
    let mut csv = String::from("sblock,engine,pattern,write_bpp,read_bpp\n");
    println!(
        "{:>8} {:<11} {:<6} {:>12} {:>12}",
        "Sblock", "engine", "pat", "write Bpp", "read Bpp"
    );
    for &sblock in sblocks {
        for (engine, ename) in ENGINES {
            for pattern in PATTERNS {
                let cfg = Config {
                    nprocs: 2,
                    nblock: 8,
                    sblock,
                    pattern,
                    access: Access::Independent,
                    engine,
                    bytes_per_proc: data,
                    verify: false,
                    cb_buffer: None,
                    ind_buffer: None,
                    reps: 3,
                };
                let (w, r) = point(&cfg);
                println!(
                    "{:>8} {:<11} {:<6} {:>12.2} {:>12.2}",
                    sblock,
                    ename,
                    pattern.label(),
                    w,
                    r
                );
                writeln!(csv, "{sblock},{ename},{},{w:.3},{r:.3}", pattern.label()).unwrap();
            }
        }
    }
    save("results/fig7.csv", &csv);
}

/// Figure 8: Bpp vs P, collective, Nblock = 64, Sblock = 2048 B.
fn fig8(opts: &Opts) {
    let procs: &[usize] = if opts.quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let data = opts
        .data
        .unwrap_or(if opts.quick { 256 << 10 } else { 1 << 20 });
    println!("# fig8: Bpp [MB/s] vs P (collective, Nblock=64, Sblock=2048 B, {data} B/proc)");
    let mut csv = String::from("procs,engine,pattern,write_bpp,read_bpp\n");
    println!(
        "{:>6} {:<11} {:<6} {:>12} {:>12}",
        "P", "engine", "pat", "write Bpp", "read Bpp"
    );
    for &p in procs {
        for (engine, ename) in ENGINES {
            for pattern in PATTERNS {
                let cfg = Config {
                    nprocs: p,
                    nblock: 64,
                    sblock: 2048,
                    pattern,
                    access: Access::Collective,
                    engine,
                    bytes_per_proc: data,
                    verify: false,
                    cb_buffer: None,
                    ind_buffer: None,
                    reps: 3,
                };
                let (w, r) = point(&cfg);
                println!(
                    "{:>6} {:<11} {:<6} {:>12.2} {:>12.2}",
                    p,
                    ename,
                    pattern.label(),
                    w,
                    r
                );
                writeln!(csv, "{p},{ename},{},{w:.3},{r:.3}", pattern.label()).unwrap();
            }
        }
    }
    save("results/fig8.csv", &csv);
}

/// Table 1: BTIO data volumes.
fn table1() {
    println!("# table1: BTIO data volume (paper: B = 42 MB / 1.7 GB, C = 170 MB / 6.8 GB)");
    let mut csv = String::from("class,grid,dstep_mb,drun_gb\n");
    println!(
        "{:>6} {:>14} {:>12} {:>10}",
        "Class", "Grid", "Dstep", "Drun"
    );
    for class in [Class::B, Class::C] {
        let v = volume_stats(class, 40);
        let n = class.n();
        println!(
            "{:>6} {:>14} {:>9.0} MB {:>7.1} GB",
            class.name(),
            format!("{n}x{n}x{n}"),
            v.dstep as f64 / 1e6,
            v.drun as f64 / 1e9
        );
        writeln!(
            csv,
            "{},{n}x{n}x{n},{:.1},{:.2}",
            class.name(),
            v.dstep as f64 / 1e6,
            v.drun as f64 / 1e9
        )
        .unwrap();
    }
    save("results/table1.csv", &csv);
}

/// Table 2: BTIO access pattern (Nblock, Sblock).
fn table2() {
    println!("# table2: BTIO non-contiguous access pattern (Sblock in bytes)");
    let mut csv = String::from("class,procs,nblock,sblock\n");
    println!("{:>6} {:>4} {:>8} {:>8}", "Class", "P", "Nblock", "Sblock");
    for class in [Class::B, Class::C] {
        for p in [4usize, 9, 16, 25] {
            let d = lio_btio::Decomp::new(class.n(), p).expect("square P");
            let (nblock, sblock) = d.access_pattern(0);
            println!("{:>6} {:>4} {:>8} {:>8.0}", class.name(), p, nblock, sblock);
            writeln!(csv, "{},{p},{nblock},{sblock:.0}", class.name()).unwrap();
        }
    }
    save("results/table2.csv", &csv);
}

/// Table 3: BTIO timings for both engines.
fn table3(opts: &Opts) {
    // full Table 3 runs classes B and C; --quick uses S and A with fewer
    // steps so it finishes in seconds
    let (classes, steps): (&[Class], usize) = if opts.quick {
        (&[Class::S, Class::A], 5)
    } else {
        (&[Class::B, Class::C], 40)
    };
    let procs: &[usize] = if opts.quick { &[4, 9] } else { &[4, 9, 16, 25] };
    println!("# table3: BTIO timings, {steps} steps (t in s, B in MB/s); paper r_io = 1.1-2.1");
    let mut csv = String::from(
        "class,procs,t_no_io,dt_list_based,dt_listless,r_io,b_list_based,b_listless\n",
    );
    println!(
        "{:>6} {:>4} {:>9} {:>12} {:>12} {:>6} {:>10} {:>10}",
        "Class", "P", "t_no-io", "dt_io(list)", "dt_io(ll)", "r_io", "B(list)", "B(ll)"
    );
    // single-run timings with many ranks timesharing one core are too
    // noisy; take the fastest of `reps` runs per configuration, and reuse
    // one pre-faulted output file for every run of a configuration so no
    // engine pays allocation/page-reclaim costs the other skipped
    let reps = if opts.quick { 1 } else { 2 };
    let best = |cfg: &lio_btio::Config, shared: &lio_core::SharedFile| -> lio_btio::RunResult {
        let mut best = lio_btio::run_on(cfg, shared.clone());
        for _ in 1..reps {
            let r = lio_btio::run_on(cfg, shared.clone());
            if r.total_secs < best.total_secs {
                best = r;
            }
        }
        best
    };
    for &class in classes {
        for &p in procs {
            let shared = lio_core::SharedFile::new(lio_pfs::MemFile::new());
            let mut cfg = lio_btio::Config::new(class, p);
            cfg.nsteps = steps;
            cfg.io_enabled = false;
            let base = best(&cfg, &shared);

            cfg.io_enabled = true;
            cfg.engine = Engine::ListBased;
            let list = best(&cfg, &shared);
            cfg.engine = Engine::Listless;
            let ll = best(&cfg, &shared);

            // Δt as the paper defines it, with the measured in-write time
            // as a fallback floor for noisy small runs
            let dt_list = (list.total_secs - base.total_secs).max(list.io_secs * 0.5);
            let dt_ll = (ll.total_secs - base.total_secs).max(ll.io_secs * 0.5);
            let r_io = dt_list / dt_ll;
            let vol = volume_stats(class, steps as u64).drun as f64;
            let b_list = vol / dt_list / 1e6;
            let b_ll = vol / dt_ll / 1e6;
            println!(
                "{:>6} {:>4} {:>9.2} {:>12.3} {:>12.3} {:>6.2} {:>10.0} {:>10.0}",
                class.name(),
                p,
                base.total_secs,
                dt_list,
                dt_ll,
                r_io,
                b_list,
                b_ll
            );
            writeln!(
                csv,
                "{},{p},{:.3},{:.4},{:.4},{:.3},{:.0},{:.0}",
                class.name(),
                base.total_secs,
                dt_list,
                dt_ll,
                r_io,
                b_list,
                b_ll
            )
            .unwrap();
        }
    }
    save("results/table3.csv", &csv);
}

/// The Section 2.4 / 3.3 overhead inventory, quantified: representation
/// memory, creation time, navigation time for list-based vs listless
/// handling.
fn overheads() {
    use lio_datatype::{ff_offset, serialize, Datatype, OlList};
    use std::time::Instant;

    println!("# overheads: the paper's Section 2.4 inventory, measured");
    let mut csv = String::from(
        "nblock,ol_bytes,compact_bytes,flatten_us,encode_us,nav_linear_us,nav_ff_us\n",
    );
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "Nblock", "ol-list B", "compact B", "flatten us", "encode us", "nav-lin us", "nav-ff us"
    );
    for nblock in [64u64, 1024, 16384, 262144] {
        let d = Datatype::vector(nblock, 1, 2, &Datatype::double()).expect("vector");

        let t = Instant::now();
        let ol = OlList::flatten(&d, 1);
        let flatten_us = t.elapsed().as_secs_f64() * 1e6;
        let ol_bytes = ol.memory_bytes();

        let t = Instant::now();
        let compact = serialize::encode(&d);
        let encode_us = t.elapsed().as_secs_f64() * 1e6;

        // navigate to the middle: list-based (linear) vs ff (O(depth))
        let mid = d.size() / 2;
        let t = Instant::now();
        let a = ol.offset_of(mid).expect("mid");
        let nav_linear_us = t.elapsed().as_secs_f64() * 1e6;
        let t = Instant::now();
        let b = ff_offset(&d, mid);
        let nav_ff_us = t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(a, b);

        println!(
            "{:>8} {:>12} {:>10} {:>12.1} {:>10.1} {:>12.2} {:>10.2}",
            nblock,
            ol_bytes,
            compact.len(),
            flatten_us,
            encode_us,
            nav_linear_us,
            nav_ff_us
        );
        writeln!(
            csv,
            "{nblock},{ol_bytes},{},{flatten_us:.1},{encode_us:.1},{nav_linear_us:.2},{nav_ff_us:.2}",
            compact.len()
        )
        .unwrap();
    }
    save("results/overheads.csv", &csv);
}

/// Extension (the paper's outlook, Section 5): "applications sometimes
/// use more complex filetypes like multi-dimensional arrays, which are
/// accessed in different manners" — collective tile writes of a global
/// 3D array through subarray fileviews, both engines, by slab thickness.
fn multidim(opts: &Opts) {
    use lio_core::{File, Hints, SharedFile};
    use lio_datatype::{Datatype, Order};
    use lio_mpi::World;
    use lio_pfs::MemFile;
    use std::time::Instant;

    let n: u64 = if opts.quick { 48 } else { 96 };
    let procs = 4usize;
    println!("# multidim: collective 3D subarray writes, N={n}, P={procs} (outlook experiment)");
    let mut csv = String::from("split,engine,write_mbs\n");
    println!(
        "{:<18} {:<11} {:>12}",
        "decomposition", "engine", "write MB/s"
    );
    // three ways to cut the same cube among 4 ranks: z-slabs (large
    // contiguous rows), y-slabs (strided rows), x-columns (tiny blocks)
    let splits: [(&str, [u64; 3]); 3] = [
        ("z-slabs", [n / 4, n, n]),
        ("y-slabs", [n, n / 4, n]),
        ("x-columns", [n, n, n / 4]),
    ];
    for (name, sub) in splits {
        for (engine, ename) in ENGINES {
            let shared = SharedFile::new(MemFile::new());
            shared.storage().set_len(n * n * n * 8).expect("prefault");
            let total_bytes = sub.iter().product::<u64>() * 8;
            let mut best = f64::INFINITY;
            let reps = if opts.quick { 3 } else { 5 };
            for _ in 0..reps {
                let shared2 = shared.clone();
                let secs = World::run(procs, move |comm| {
                    let me = comm.rank() as u64;
                    let starts = match name {
                        "z-slabs" => [me * sub[0], 0, 0],
                        "y-slabs" => [0, me * sub[1], 0],
                        _ => [0, 0, me * sub[2]],
                    };
                    let ft = Datatype::subarray(
                        &[n, n, n],
                        &sub,
                        &starts,
                        Order::C,
                        &Datatype::double(),
                    )
                    .expect("subarray");
                    let mut f = File::open(comm, shared2.clone(), Hints::with_engine(engine))
                        .expect("open");
                    f.set_view(0, Datatype::double(), ft).expect("set_view");
                    let data = vec![me as u8 + 1; total_bytes as usize];
                    comm.barrier();
                    let t = Instant::now();
                    f.write_at_all(0, &data, total_bytes, &Datatype::byte())
                        .expect("write");
                    comm.barrier();
                    comm.allmax_f64(t.elapsed().as_secs_f64())
                })[0];
                best = best.min(secs);
            }
            let mbs = total_bytes as f64 / best / 1e6;
            println!("{:<18} {:<11} {:>12.1}", name, ename, mbs);
            writeln!(csv, "{name},{ename},{mbs:.2}").unwrap();
        }
    }
    save("results/multidim.csv", &csv);
}

/// Ablations of the two-phase design choices DESIGN.md calls out: the
/// collective buffer size and the number of io-processes, at the
/// figure-6 operating point (collective nc-nc, small blocks).
fn ablation(opts: &Opts) {
    let data = opts
        .data
        .unwrap_or(if opts.quick { 256 << 10 } else { 1 << 20 });
    let base = Config {
        nprocs: 4,
        nblock: 1024,
        sblock: 8,
        pattern: Pattern::NcNc,
        access: Access::Collective,
        engine: Engine::Listless,
        bytes_per_proc: data,
        verify: false,
        cb_buffer: None,
        ind_buffer: None,
        reps: 3,
    };
    println!("# ablation: collective buffer size and IOP count (P=4, Nblock=1024, Sblock=8)");
    let mut csv = String::from("knob,value,engine,write_bpp,read_bpp\n");
    println!(
        "{:<10} {:>10} {:<11} {:>12} {:>12}",
        "knob", "value", "engine", "write Bpp", "read Bpp"
    );
    for cb in [64usize << 10, 512 << 10, 4 << 20] {
        for (engine, ename) in ENGINES {
            let mut cfg = base.clone();
            cfg.engine = engine;
            cfg.cb_buffer = Some(cb);
            let (w, r) = point(&cfg);
            println!(
                "{:<10} {:>10} {:<11} {:>12.2} {:>12.2}",
                "cb_buffer", cb, ename, w, r
            );
            writeln!(csv, "cb_buffer,{cb},{ename},{w:.3},{r:.3}").unwrap();
        }
    }
    // IOP count is a Hints knob the noncontig Config does not expose;
    // sweep it through a direct run
    for nodes in [1usize, 2, 4] {
        for (engine, ename) in ENGINES {
            let (w, r) = iop_point(engine, nodes, data);
            println!(
                "{:<10} {:>10} {:<11} {:>12.2} {:>12.2}",
                "cb_nodes", nodes, ename, w, r
            );
            writeln!(csv, "cb_nodes,{nodes},{ename},{w:.3},{r:.3}").unwrap();
        }
    }
    save("results/ablation.csv", &csv);
}

/// One collective nc-nc measurement with an explicit IOP count.
fn iop_point(engine: Engine, cb_nodes: usize, data: u64) -> (f64, f64) {
    use lio_core::{File, Hints, SharedFile};
    use lio_datatype::Datatype;
    use lio_mpi::World;
    use lio_pfs::MemFile;
    use std::time::Instant;

    let nprocs = 4usize;
    let nblock = 1024u64;
    let sblock = 8u64;
    let count = (data / (nblock * sblock)).max(1);
    let total = count * nblock * sblock;
    let shared = SharedFile::new(MemFile::new());
    shared
        .storage()
        .set_len(total * nprocs as u64)
        .expect("prefault");
    let hints = Hints::with_engine(engine).io_nodes(cb_nodes);
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let shared2 = shared.clone();
        let (w, r) = World::run(nprocs, move |comm| {
            let me = comm.rank() as u64;
            let ft = lio_noncontig::figure4_filetype(me, nprocs as u64, nblock, sblock);
            let mut f = File::open(comm, shared2.clone(), hints).expect("open");
            f.set_view(0, Datatype::byte(), ft).expect("set_view");
            let data_buf = vec![me as u8; total as usize];
            comm.barrier();
            let t = Instant::now();
            f.write_at_all(0, &data_buf, total, &Datatype::byte())
                .expect("write");
            comm.barrier();
            let w = comm.allmax_f64(t.elapsed().as_secs_f64());
            let mut back = vec![0u8; total as usize];
            comm.barrier();
            let t = Instant::now();
            f.read_at_all(0, &mut back, total, &Datatype::byte())
                .expect("read");
            comm.barrier();
            let r = comm.allmax_f64(t.elapsed().as_secs_f64());
            (w, r)
        })[0];
        best.0 = best.0.min(w);
        best.1 = best.1.min(r);
    }
    (total as f64 / best.0 / 1e6, total as f64 / best.1 / 1e6)
}

/// Storage-speed ablation (the paper's closing observation: "the higher
/// the bandwidth of the used file system ... the more important listless
/// I/O is"): the same collective nc-nc point over stores of different
/// speeds. The listless advantage should shrink as storage slows down.
fn throttle(opts: &Opts) {
    use lio_core::{File, Hints, SharedFile};
    use lio_datatype::Datatype;
    use lio_mpi::World;
    use lio_pfs::{MemFile, Throttle, ThrottledFile};
    use std::time::Instant;

    let data = opts
        .data
        .unwrap_or(if opts.quick { 128 << 10 } else { 512 << 10 });
    let nprocs = 4usize;
    let nblock = 1024u64;
    let sblock = 8u64;
    let count = (data / (nblock * sblock)).max(1);
    let total = count * nblock * sblock;

    println!("# throttle: engine advantage vs storage speed (collective nc-nc)");
    let mut csv = String::from("storage,engine,write_bpp\n");
    println!("{:<14} {:<11} {:>12}", "storage", "engine", "write Bpp");
    let profiles: [(&str, Option<Throttle>); 3] = [
        ("memcpy", None),
        ("sx6-like", Some(Throttle::sx6_local_fs())),
        ("nfs-like", Some(Throttle::commodity_nfs())),
    ];
    for (sname, profile) in profiles {
        for (engine, ename) in ENGINES {
            let shared = match profile {
                None => SharedFile::new(MemFile::new()),
                Some(t) => SharedFile::new(ThrottledFile::new(MemFile::new(), t)),
            };
            shared
                .storage()
                .set_len(total * nprocs as u64)
                .expect("prefault");
            let hints = Hints::with_engine(engine);
            let mut best = f64::INFINITY;
            let reps = if sname == "nfs-like" { 1 } else { 2 };
            for _ in 0..reps {
                let shared2 = shared.clone();
                let secs = World::run(nprocs, move |comm| {
                    let me = comm.rank() as u64;
                    let ft = lio_noncontig::figure4_filetype(me, nprocs as u64, nblock, sblock);
                    let mut f = File::open(comm, shared2.clone(), hints).expect("open");
                    f.set_view(0, Datatype::byte(), ft).expect("set_view");
                    let data_buf = vec![me as u8; total as usize];
                    comm.barrier();
                    let t = Instant::now();
                    f.write_at_all(0, &data_buf, total, &Datatype::byte())
                        .expect("write");
                    comm.barrier();
                    comm.allmax_f64(t.elapsed().as_secs_f64())
                })[0];
                best = best.min(secs);
            }
            let mbs = total as f64 / best / 1e6;
            println!("{:<14} {:<11} {:>12.2}", sname, ename, mbs);
            writeln!(csv, "{sname},{ename},{mbs:.3}").unwrap();
        }
    }
    save("results/throttle.csv", &csv);
}

/// One instrumented collective write + read per engine — monolithic and
/// pipelined — with a full `lio-obs` snapshot each. The JSON answers,
/// per configuration: how many file accesses and bytes the storage
/// layer saw (`pfs.*`, via a [`CountingFile`] wrapper), how many bytes
/// crossed the exchange phase and how much of that was ol-list metadata
/// (`core.coll.exchange.*`, `mpi.*`), how many blocks the pack/unpack
/// machinery copied (`dt.*`), and how the wall time of the collective
/// split into exchange / file I/O / pack phases (`core.coll.*_ns`).
/// The `*_pipelined` entries run on throttled (1 ms/op) storage with
/// small exchange windows so `core.coll.*.overlap_ns` — storage time
/// hidden behind the exchange — is meaningfully exercised.
fn metrics(opts: &Opts) {
    use lio_core::{File, Hints, SharedFile};
    use lio_datatype::Datatype;
    use lio_mpi::World;
    use lio_pfs::{CountingFile, MemFile, Throttle, ThrottledFile};
    use std::time::Duration;

    let nprocs = 4usize;
    let nblock: u64 = if opts.quick { 256 } else { 1024 };
    let sblock: u64 = 8;
    let count = 16u64;
    let total = count * nblock * sblock;
    println!(
        "# metrics: instrumented collective write+read (P={nprocs}, Nblock={nblock}, Sblock={sblock})"
    );

    // Consume the one-shot LIO_OBS env check up front: this subcommand is
    // meaningless without recording, so its explicit enable must win over
    // the env var that File::open would otherwise apply mid-run.
    lio_obs::init_from_env();

    let mut configs = Vec::new();
    for (engine, ename) in ENGINES.iter() {
        configs.push((ename.replace('-', "_"), Hints::with_engine(*engine), false));
    }
    for (engine, ename) in ENGINES.iter() {
        configs.push((
            format!("{}_pipelined", ename.replace('-', "_")),
            Hints::with_engine(*engine)
                .cb_buffer(4 << 10)
                .pipelined(true)
                .pipeline_depth(2),
            true,
        ));
    }
    // the real-disk column: the same collective through the `os`
    // submission-queue backend (worker threadpool over a real file),
    // counters still collected above the queue's facade
    for (engine, ename) in ENGINES.iter() {
        configs.push((
            format!("{}_os", ename.replace('-', "_")),
            Hints::with_engine(*engine).backend(lio_core::BackendKind::Os),
            false,
        ));
    }
    // the health column: the same collective with the runtime health
    // layer armed (heartbeats, skew tracking, watchdog in diagnose-only
    // mode) — a small window size so every op closes several skew windows
    for (engine, ename) in ENGINES.iter() {
        configs.push((
            format!("{}_health", ename.replace('-', "_")),
            Hints::with_engine(*engine).cb_buffer(4 << 10).health(true),
            false,
        ));
    }
    // listless with a nested non-contiguous memtype big enough to cross
    // the sharding threshold: exercises the compiled run programs
    // (`dt.compile.*`) and the sharded copy (`dt.pack.shard.*`)
    configs.push((
        "listless_sharded_pack".to_string(),
        Hints::listless().pack_threads(4).io_nodes(1),
        false,
    ));

    let mut json = String::from("{\n");
    let mut entries: Vec<lio_bench::schema::Entry> = Vec::new();
    for (i, (key, hints, throttled)) in configs.iter().enumerate() {
        lio_obs::reset();
        lio_obs::set_enabled(true);
        let health_on = hints.health == Some(true);
        lio_obs::health::reset();
        lio_obs::health::set_enabled(health_on);
        if health_on {
            // diagnose-only with a deadline this workload cannot trip
            lio_obs::health::set_watchdog(30_000, false);
        }
        let slow = Throttle {
            read_bw: 2e9,
            write_bw: 2e9,
            latency: Duration::from_millis(1),
        };
        let shared = if *throttled {
            SharedFile::new(CountingFile::new(ThrottledFile::new(MemFile::new(), slow)))
        } else if hints.backend == lio_core::BackendKind::Os {
            SharedFile::new(CountingFile::new(
                lio_pfs::OsFile::temp().expect("os backend temp file"),
            ))
        } else {
            SharedFile::new(CountingFile::new(MemFile::new()))
        };
        let hints = *hints;
        let shared2 = shared.clone();
        let shard_n: u64 = if opts.quick { 1024 } else { 2048 };
        World::run(nprocs, move |comm| {
            let me = comm.rank() as u64;
            let mut f = File::open(comm, shared2.clone(), hints).expect("open");
            if hints.pack_threads > 1 {
                // vector-of-vector memtype, no strided fast path, with
                // ≥ 1 MiB of data per rank so the copy shards
                let inner = Datatype::vector(16, 1, 2, &Datatype::basic(64)).unwrap();
                let mem = Datatype::vector(shard_n, 1, 2, &inner).unwrap();
                let size = mem.size();
                let span = mem.extent() as usize;
                let src: Vec<u8> = (0..span)
                    .map(|i| (i as u8).wrapping_add(me as u8))
                    .collect();
                f.set_view(0, Datatype::byte(), Datatype::byte())
                    .expect("set_view");
                f.write_at_all(me * size, &src, 1, &mem).expect("write");
                let mut back = vec![0u8; span];
                f.read_at_all(me * size, &mut back, 1, &mem).expect("read");
                let mut a = vec![0u8; size as usize];
                let mut b = vec![0u8; size as usize];
                lio_datatype::ff_pack(&src, 1, &mem, 0, &mut a);
                lio_datatype::ff_pack(&back, 1, &mem, 0, &mut b);
                assert_eq!(a, b, "sharded read-back mismatch");
                return;
            }
            let ft = lio_noncontig::figure4_filetype(me, nprocs as u64, nblock, sblock);
            f.set_view(0, Datatype::byte(), ft).expect("set_view");
            let data = vec![me as u8 + 1; total as usize];
            f.write_at_all(0, &data, total, &Datatype::byte())
                .expect("write");
            let mut back = vec![0u8; total as usize];
            f.read_at_all(0, &mut back, total, &Datatype::byte())
                .expect("read");
            assert_eq!(back, data, "read-back mismatch");
        });
        lio_obs::set_enabled(false);
        let snap = lio_obs::snapshot();
        println!(
            "  {key}: {} file accesses, {} B written, {} B list metadata, {} B exchange data",
            snap.counter("pfs.read.calls") + snap.counter("pfs.write.calls"),
            snap.counter("pfs.write.bytes"),
            snap.counter("core.coll.exchange.list_bytes"),
            snap.counter("core.coll.exchange.data_bytes"),
        );
        if hints.pack_threads > 1 {
            println!(
                "  {key}: {} compiled programs ({} frames), {} pack shards, {} shard fallbacks",
                snap.counter("dt.compile.programs"),
                snap.counter("dt.compile.frames"),
                snap.counter("dt.pack.shard.shards"),
                snap.counter("dt.pack.shard.skipped"),
            );
            println!(
                "  {key}: normalize {} rewrites ({} -> {} frames); kernels: {} frames \
                 selected, {} blocks / {} B copied, {} fallbacks",
                snap.counter("dt.normalize.rewrites"),
                snap.counter("dt.normalize.frames_before"),
                snap.counter("dt.normalize.frames_after"),
                snap.counter("dt.kernel.selected"),
                snap.counter("dt.kernel.blocks"),
                snap.counter("dt.kernel.bytes"),
                snap.counter("dt.kernel.fallbacks"),
            );
        }
        if *throttled {
            println!(
                "  {key}: overlap write {:.2} ms / read {:.2} ms (storage hidden behind \
                 exchange), peak IOP buffering {} B",
                snap.counter("core.coll.write.overlap_ns") as f64 / 1e6,
                snap.counter("core.coll.read.overlap_ns") as f64 / 1e6,
                snap.gauge("core.coll.pipeline.peak_buffered_bytes"),
            );
        }
        // satellite: request-size quantiles straight from the log2
        // histograms — the shape data sieving / two-phase is supposed
        // to move (tiny accesses -> buffer-sized ones)
        if let Some(h) = snap.histogram("pfs.write.size") {
            println!(
                "  {key}: pfs write sizes p50/p95/p99 = {}/{}/{} B ({} calls)",
                h.p50(),
                h.p95(),
                h.p99(),
                h.count,
            );
        }
        {
            use lio_bench::schema::Entry;
            let e = |metric: &str, value: f64, unit: &'static str| {
                Entry::new("metrics", key.clone(), metric, value, unit)
            };
            for op in ["write", "read"] {
                for phase in ["exchange", "io", "pack"] {
                    let v = snap.counter(&format!("core.coll.{op}.{phase}_ns"));
                    entries.push(e(&format!("{op}_{phase}_ns"), v as f64, "ns"));
                }
            }
            entries.push(e(
                "pfs_accesses",
                (snap.counter("pfs.read.calls") + snap.counter("pfs.write.calls")) as f64,
                "count",
            ));
            entries.push(e(
                "pfs_write_bytes",
                snap.counter("pfs.write.bytes") as f64,
                "bytes",
            ));
            entries.push(e(
                "exchange_list_bytes",
                snap.counter("core.coll.exchange.list_bytes") as f64,
                "bytes",
            ));
            entries.push(e(
                "exchange_data_bytes",
                snap.counter("core.coll.exchange.data_bytes") as f64,
                "bytes",
            ));
            for (hname, short) in [
                ("pfs.write.size", "write_size"),
                ("pfs.read.size", "read_size"),
            ] {
                if let Some(h) = snap.histogram(hname) {
                    entries.push(e(&format!("pfs_{short}_p50"), h.p50() as f64, "bytes"));
                    entries.push(e(&format!("pfs_{short}_p95"), h.p95() as f64, "bytes"));
                    entries.push(e(&format!("pfs_{short}_p99"), h.p99() as f64, "bytes"));
                }
            }
            if health_on {
                let hr = lio_obs::health::report();
                println!(
                    "  {key}: health {} beats, watchdog {} checks / {} fired, {} straggler flags",
                    snap.counter("core.health.beats"),
                    hr.watchdog_checks,
                    hr.watchdog_fired,
                    hr.straggler_flags,
                );
                entries.push(e(
                    "health_beats",
                    snap.counter("core.health.beats") as f64,
                    "count",
                ));
                entries.push(e(
                    "health_watchdog_checks",
                    hr.watchdog_checks as f64,
                    "count",
                ));
                entries.push(e(
                    "health_watchdog_fired",
                    hr.watchdog_fired as f64,
                    "count",
                ));
                entries.push(e(
                    "health_stalls_aborted",
                    hr.stalls_aborted as f64,
                    "count",
                ));
                entries.push(e(
                    "health_straggler_flags",
                    hr.straggler_flags as f64,
                    "count",
                ));
                if let Some(h) = snap.histogram("core.health.skew_ns") {
                    println!(
                        "  {key}: window rank-skew p50/p95/p99 = {}/{}/{} ns ({} windows)",
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        h.count,
                    );
                    entries.push(e("health_skew_p50_ns", h.p50() as f64, "ns"));
                    entries.push(e("health_skew_p95_ns", h.p95() as f64, "ns"));
                    entries.push(e("health_skew_p99_ns", h.p99() as f64, "ns"));
                    entries.push(e("health_skew_windows", h.count as f64, "count"));
                }
            }
        }
        lio_obs::health::set_enabled(false);
        let sep = if i + 1 < configs.len() { "," } else { "" };
        writeln!(json, "  \"{key}\": {}{sep}", snap.to_json()).unwrap();
    }
    json.push_str("}\n");
    fs::write("results/metrics.json", &json).expect("write metrics json");
    println!("  -> results/metrics.json");
    lio_bench::schema::write_bench_json(
        "BENCH_metrics.json",
        &entries,
        &[
            ("nprocs", nprocs.to_string()),
            ("nblock", nblock.to_string()),
            ("sblock", sblock.to_string()),
        ],
    );
}

/// `repro top`: live per-rank health introspection. Runs a 4-rank
/// pipelined collective write + read on throttled storage with the
/// runtime health layer armed, samples the lock-free heartbeat slots
/// while the collective is in flight (phase, window, bytes, queue depth,
/// heartbeat age per rank — the batch rendering of a `top`-style view),
/// and writes the final schema-versioned health report to
/// `results/health.json`.
fn top_cmd(opts: &Opts) {
    use lio_core::{File, Hints, SharedFile};
    use lio_datatype::Datatype;
    use lio_mpi::World;
    use lio_obs::health;
    use lio_pfs::{MemFile, Throttle, ThrottledFile};
    use std::time::Duration;

    let nprocs = 4usize;
    let nblock: u64 = if opts.quick { 128 } else { 512 };
    let sblock: u64 = 64;
    let steps: u64 = if opts.quick { 2 } else { 4 };
    let total = 16 * nblock * sblock;
    println!("# top: per-rank health snapshots over a 4-rank throttled collective run");

    // consume the one-shot env checks, then force the layer on: this
    // subcommand exists to show heartbeats
    lio_obs::init_from_env();
    health::init_from_env();
    health::reset();
    health::set_enabled(true);
    health::set_watchdog(30_000, false);

    let slow = Throttle {
        read_bw: 1e9,
        write_bw: 1e9,
        latency: Duration::from_millis(1),
    };
    let shared = SharedFile::new(ThrottledFile::new(MemFile::new(), slow));
    let hints = Hints::listless()
        .cb_buffer(4 << 10)
        .pipelined(true)
        .pipeline_depth(2)
        .health(true);
    let worker = std::thread::spawn(move || {
        World::run(nprocs, move |comm| {
            let me = comm.rank() as u64;
            let mut f = File::open(comm, shared.clone(), hints).expect("open");
            let ft = lio_noncontig::figure4_filetype(me, nprocs as u64, nblock, sblock);
            f.set_view(0, Datatype::byte(), ft).expect("set_view");
            for s in 0..steps {
                let data = vec![(me + s) as u8 + 1; total as usize];
                f.write_at_all(s * total, &data, total, &Datatype::byte())
                    .expect("write");
            }
            let mut back = vec![0u8; total as usize];
            f.read_at_all(0, &mut back, total, &Datatype::byte())
                .expect("read");
        });
    });

    // sample the slots while the collective runs: each frame is a
    // consistent-enough relaxed read of every rank's heartbeat slot
    let mut frames = 0u32;
    let t0 = std::time::Instant::now();
    while !worker.is_finished() && frames < 40 {
        std::thread::sleep(Duration::from_millis(50));
        let rep = health::report();
        if rep.ranks.is_empty() {
            continue;
        }
        frames += 1;
        println!("-- frame {frames} (t+{} ms)", t0.elapsed().as_millis());
        print!("{}", rep.render());
    }
    worker.join().expect("collective worker");

    let rep = health::report();
    println!("-- final ({frames} in-flight frames sampled)");
    print!("{}", rep.render());
    let json = rep.to_json();
    lio_obs::json::validate(&json).expect("health export must be well-formed JSON");
    fs::write("results/health.json", &json).expect("write health json");
    println!("  -> results/health.json");
    health::set_enabled(false);
    health::reset();
}

/// `repro bench`: regenerate the schema-versioned pipeline bench
/// artifact (`BENCH_pipeline.json`), including the `{engine}/os/{off,on}`
/// real-storage backend column, through the same measurement code the
/// `pipeline` cargo bench target runs. `--quick` shrinks the sampling
/// the same way `LIO_BENCH_FAST=1` does.
fn bench_cmd(opts: &Opts) {
    if opts.quick {
        std::env::set_var("LIO_BENCH_FAST", "1");
    }
    lio_bench::pipebench::run();
}

/// `repro trace`: a 4-rank pipelined collective write + read on
/// throttled storage with event tracing armed, exported as a
/// Chrome/Perfetto timeline (`results/trace.json`, load it at
/// `ui.perfetto.dev`) together with the per-op critical-path report
/// naming the rank and phase that bounded each collective's wall time.
fn trace_cmd(opts: &Opts) {
    use lio_core::{File, Hints, SharedFile};
    use lio_datatype::Datatype;
    use lio_mpi::World;
    use lio_obs::trace;
    use lio_pfs::{MemFile, Throttle, ThrottledFile};
    use std::time::Duration;

    let nprocs = 4usize;
    let nblock: u64 = if opts.quick { 128 } else { 512 };
    let sblock: u64 = 64;
    let total = 16 * nblock * sblock;
    println!("# trace: 4-rank pipelined collective write+read, 1 ms/op storage, tracing on");

    // consume the one-shot env checks, then force recording on: this
    // subcommand exists to produce a timeline
    lio_obs::init_from_env();
    trace::init_from_env();
    lio_obs::reset();
    lio_obs::set_enabled(true);
    trace::set_enabled(true);
    trace::reset();
    // health armed too: the critical-path report then carries the
    // per-rank window-skew attribution alongside the bounding phases
    lio_obs::health::init_from_env();
    lio_obs::health::reset();
    lio_obs::health::set_enabled(true);
    lio_obs::health::set_watchdog(30_000, false);

    let slow = Throttle {
        read_bw: 2e9,
        write_bw: 2e9,
        latency: Duration::from_millis(1),
    };
    let shared = SharedFile::new(ThrottledFile::new(MemFile::new(), slow));
    let hints = Hints::listless()
        .cb_buffer(4 << 10)
        .pipelined(true)
        .pipeline_depth(2);
    World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let mut f = File::open(comm, shared.clone(), hints).expect("open");
        let ft = lio_noncontig::figure4_filetype(me, nprocs as u64, nblock, sblock);
        f.set_view(0, Datatype::byte(), ft).expect("set_view");
        let data = vec![me as u8 + 1; total as usize];
        f.write_at_all(0, &data, total, &Datatype::byte())
            .expect("write");
        let mut back = vec![0u8; total as usize];
        f.read_at_all(0, &mut back, total, &Datatype::byte())
            .expect("read");
        assert_eq!(back, data, "read-back mismatch");
    });

    let streams = trace::collect();
    let timeline = trace::merge(&streams);
    let reports = trace::critical_path(&timeline);
    lio_obs::set_enabled(false);
    trace::set_enabled(false);

    let dropped: u64 = streams.iter().map(|s| s.dropped).sum();
    println!(
        "  {} events on {} ranks, {} message edges, {} dropped, {} unmatched, {} causal violations",
        timeline.events.len(),
        streams.len(),
        timeline.edges.len(),
        dropped,
        timeline.unmatched_sends + timeline.unmatched_recvs,
        timeline.causal_violations,
    );
    print!("{}", trace::render_report(&reports, &timeline));
    lio_obs::health::set_enabled(false);
    lio_obs::health::reset();

    let json = trace::to_chrome_json(&timeline);
    lio_obs::json::validate(&json).expect("trace export must be well-formed JSON");
    fs::write("results/trace.json", &json).expect("write trace json");
    println!("  -> results/trace.json (open at https://ui.perfetto.dev)");
}

/// `repro profile`: run structurally different workloads — the Figure 5
/// independent pattern, the Figure 6 collective on throttled storage,
/// and a BTIO-style nested-datatype pack — with the access-pattern
/// profiler armed, print each workload's characterization plus the hint
/// advisor's recommendations (with the reasoning behind each), and write
/// the schema-versioned profiles to `results/profile.json`. This is the
/// observe half of the self-tuning loop: the recommendations here should
/// match the empirically fastest static configurations in
/// `BENCH_pipeline.json` / `BENCH_pack.json`.
fn profile_cmd(opts: &Opts) {
    use lio_core::{File, Hints, SharedFile};
    use lio_datatype::Datatype;
    use lio_mpi::World;
    use lio_obs::profile;
    use lio_pfs::{CountingFile, MemFile, Throttle, ThrottledFile};
    use std::time::Duration;

    const PROFILE_SCHEMA_VERSION: u64 = 1;
    let nblock: u64 = if opts.quick { 128 } else { 512 };
    println!("# profile: access-pattern profiler + hint advisor, 3 workloads");

    // consume the one-shot env checks, then drive recording explicitly
    lio_obs::init_from_env();
    profile::init_from_env();

    // run `body` with the profiler armed; returns (profile, advice) JSON
    let profiled = |name: &str, body: &mut dyn FnMut()| -> (String, String) {
        lio_obs::reset();
        lio_obs::set_enabled(true);
        profile::reset();
        profile::set_enabled(true);
        body();
        profile::set_enabled(false);
        let p = profile::snapshot();
        lio_obs::set_enabled(false);
        let recs = profile::advise(&p);
        println!("  {name}: {}", p.characterize());
        for r in &recs {
            println!("    -> {}  [{}: {}]", r.setting, r.rule, r.reason);
        }
        (p.to_json(), profile::recommendations_json(&recs))
    };

    let mut sections: Vec<(&str, (String, String))> = Vec::new();

    // 1. Figure 5: independent access, 2 procs, 8 B blocks — the dense
    // small-block regime where data sieving wins
    sections.push((
        "fig5_independent",
        profiled("fig5_independent", &mut || {
            let nprocs = 2usize;
            let sblock = 8u64;
            let total = 16 * nblock * sblock;
            let shared = SharedFile::new(CountingFile::new(MemFile::new()));
            World::run(nprocs, move |comm| {
                let me = comm.rank() as u64;
                let mut f = File::open(comm, shared.clone(), Hints::listless()).expect("open");
                let ft = lio_noncontig::figure4_filetype(me, nprocs as u64, nblock, sblock);
                f.set_view(0, Datatype::byte(), ft).expect("set_view");
                let data = vec![me as u8 + 1; total as usize];
                f.write_at(0, &data, total, &Datatype::byte())
                    .expect("write");
                let mut back = vec![0u8; total as usize];
                f.read_at(0, &mut back, total, &Datatype::byte())
                    .expect("read");
                assert_eq!(back, data, "read-back mismatch");
            });
        }),
    ));

    // 2. Figure 6: collective access, 4 procs, slow storage, pipelining
    // deliberately left off — the profile should reveal the io-bound
    // phase breakdown and the advisor should recommend turning it on
    sections.push((
        "fig6_collective_throttled",
        profiled("fig6_collective_throttled", &mut || {
            let nprocs = 4usize;
            let sblock = 64u64;
            let total = 16 * nblock * sblock;
            let slow = Throttle {
                read_bw: 2e9,
                write_bw: 2e9,
                latency: Duration::from_millis(1),
            };
            let shared =
                SharedFile::new(CountingFile::new(ThrottledFile::new(MemFile::new(), slow)));
            let hints = Hints::listless().cb_buffer(4 << 10);
            World::run(nprocs, move |comm| {
                let me = comm.rank() as u64;
                let mut f = File::open(comm, shared.clone(), hints).expect("open");
                let ft = lio_noncontig::figure4_filetype(me, nprocs as u64, nblock, sblock);
                f.set_view(0, Datatype::byte(), ft).expect("set_view");
                let data = vec![me as u8 + 1; total as usize];
                f.write_at_all(0, &data, total, &Datatype::byte())
                    .expect("write");
                let mut back = vec![0u8; total as usize];
                f.read_at_all(0, &mut back, total, &Datatype::byte())
                    .expect("read");
                assert_eq!(back, data, "read-back mismatch");
            });
        }),
    ));

    // 3. BTIO-style nested memtype: vector-of-vector elements into a
    // contiguous file region — pack-dominated, exercising the compiled
    // run-program shape stats
    let shard_n: u64 = if opts.quick { 512 } else { 2048 };
    sections.push((
        "btio_nested_pack",
        profiled("btio_nested_pack", &mut || {
            let nprocs = 4usize;
            let shared = SharedFile::new(CountingFile::new(MemFile::new()));
            World::run(nprocs, move |comm| {
                let me = comm.rank() as u64;
                let mut f = File::open(comm, shared.clone(), Hints::listless()).expect("open");
                let inner = Datatype::vector(16, 1, 2, &Datatype::basic(64)).unwrap();
                let mem = Datatype::vector(shard_n, 1, 2, &inner).unwrap();
                let size = mem.size();
                let span = mem.extent() as usize;
                let src: Vec<u8> = (0..span)
                    .map(|i| (i as u8).wrapping_add(me as u8))
                    .collect();
                f.set_view(0, Datatype::byte(), Datatype::byte())
                    .expect("set_view");
                f.write_at_all(me * size, &src, 1, &mem).expect("write");
                let mut back = vec![0u8; span];
                f.read_at_all(me * size, &mut back, 1, &mem).expect("read");
            });
        }),
    ));

    // 4. the same nested pack built raggedly (hindexed rows instead of
    // an outer vector): the raw compile is a literal tail and only the
    // normalization pass recovers the strided form — the profile must
    // report these programs as "rewritten", not "born strided"
    sections.push((
        "ragged_hindexed_pack",
        profiled("ragged_hindexed_pack", &mut || {
            let nprocs = 2usize;
            let rows: u64 = if opts.quick { 256 } else { 1024 };
            let shared = SharedFile::new(CountingFile::new(MemFile::new()));
            World::run(nprocs, move |comm| {
                let me = comm.rank() as u64;
                let mut f = File::open(comm, shared.clone(), Hints::listless()).expect("open");
                let row = Datatype::vector(16, 1, 2, &Datatype::basic(64)).unwrap();
                let step = 2 * row.extent() as i64;
                let lens = vec![1u64; rows as usize];
                let disps: Vec<i64> = (0..rows as i64).map(|i| i * step).collect();
                let mem = Datatype::hindexed(&lens, &disps, &row).unwrap();
                let size = mem.size();
                let span = mem.extent() as usize;
                let src: Vec<u8> = (0..span)
                    .map(|i| (i as u8).wrapping_add(me as u8))
                    .collect();
                f.set_view(0, Datatype::byte(), Datatype::byte())
                    .expect("set_view");
                f.write_at_all(me * size, &src, 1, &mem).expect("write");
                let mut back = vec![0u8; span];
                f.read_at_all(me * size, &mut back, 1, &mem).expect("read");
            });
        }),
    ));

    let mut json = String::from("{\n");
    writeln!(json, "  \"schema_version\": {PROFILE_SCHEMA_VERSION},").unwrap();
    writeln!(json, "  \"commit\": \"{}\",", lio_bench::schema::commit()).unwrap();
    json.push_str("  \"workloads\": {\n");
    for (i, (name, (profile_json, recs_json))) in sections.iter().enumerate() {
        let sep = if i + 1 < sections.len() { "," } else { "" };
        writeln!(
            json,
            "  \"{name}\": {{\"profile\": {profile_json},\n  \"recommendations\": {recs_json}}}{sep}"
        )
        .unwrap();
    }
    json.push_str("  }\n}\n");
    lio_obs::json::validate(&json).expect("profile export must be well-formed JSON");
    fs::write("results/profile.json", &json).expect("write profile json");
    println!("  -> results/profile.json");
}

/// `repro validate-json <file>`: the tiny well-formedness checker CI
/// points at `results/trace.json` and the `BENCH_*.json` artifacts.
fn validate_json(path: &str) {
    let s = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("validate-json: cannot read {path}: {e}");
        std::process::exit(2);
    });
    match lio_obs::json::validate(&s) {
        Ok(()) => println!("{path}: well-formed JSON ({} bytes)", s.len()),
        Err(e) => {
            eprintln!("{path}: INVALID JSON: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro bench-compare [--fail] <baseline> <current>`: diff two
/// schema-versioned `BENCH_*.json` files, matching entries by
/// `(bench, config, metric)`, and flag time metrics that regressed by
/// more than `LIO_BENCH_COMPARE_PCT` percent (default 15). With
/// `--fail`, a regressed *end-to-end* metric (`wall_ns`/`median_ns`)
/// names its `(bench, config, metric)` triple and the process exits
/// nonzero — ci.sh runs every committed `BENCH_*.json` through this
/// gate. Phase-breakdown slices (`pack_ns`, `io_ns`, …) always warn
/// only: attribution legitimately shifts between lanes, and a
/// sub-millisecond slice's run-to-run noise would gate on the host, not
/// the code.
fn bench_compare(baseline: &str, current: &str, fail: bool) {
    use lio_obs::json::{parse, Value};

    let load = |path: &str| -> Value {
        let s = fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench-compare: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse(&s).unwrap_or_else(|e| {
            eprintln!("bench-compare: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let base = load(baseline);
    let cur = load(current);
    let version = |v: &Value| v.get("schema_version").and_then(|s| s.as_f64());
    match (version(&base), version(&cur)) {
        (Some(a), Some(b)) if a == b => {}
        (a, b) => {
            eprintln!(
                "bench-compare: schema_version mismatch or missing \
                 (baseline {a:?}, current {b:?}); refusing to diff"
            );
            std::process::exit(2);
        }
    }
    let rows = |v: &Value| -> Vec<(String, f64, String)> {
        v.get("entries")
            .and_then(|e| e.as_arr())
            .map(|arr| {
                arr.iter()
                    .filter_map(|e| {
                        let key = format!(
                            "{}/{}/{}",
                            e.get("bench")?.as_str()?,
                            e.get("config")?.as_str()?,
                            e.get("metric")?.as_str()?
                        );
                        let unit = e.get("unit")?.as_str()?.to_string();
                        Some((key, e.get("value")?.as_f64()?, unit))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_rows = rows(&base);
    let cur_rows = rows(&cur);
    let is_time = |unit: &str| matches!(unit, "ns" | "us" | "ms" | "s");
    let threshold: f64 = std::env::var("LIO_BENCH_COMPARE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15.0);
    let gates = |key: &str| key.ends_with("/wall_ns") || key.ends_with("/median_ns");
    let mut compared = 0usize;
    let mut regressions = 0usize;
    let mut warnings = 0usize;
    for (key, cur_v, unit) in &cur_rows {
        if !is_time(unit) {
            continue;
        }
        let Some((_, base_v, _)) = base_rows.iter().find(|(k, _, _)| k == key) else {
            continue;
        };
        if *base_v <= 0.0 {
            continue;
        }
        compared += 1;
        let pct = (cur_v - base_v) / base_v * 100.0;
        if pct > threshold {
            let gating = fail && gates(key);
            if gating {
                regressions += 1;
            } else {
                warnings += 1;
            }
            let tag = if gating { "REGRESSION" } else { "WARN" };
            println!("{tag}: {key} regressed {pct:+.1}% ({base_v:.0} {unit} -> {cur_v:.0} {unit})");
        }
    }
    println!(
        "bench-compare: {compared} time metrics compared, {regressions} wall regressions and \
         {warnings} warnings > {threshold}% ({baseline} -> {current})"
    );
    if fail && regressions > 0 {
        eprintln!(
            "bench-compare: FAIL — {regressions} (bench, config, metric) triples regressed \
             more than {threshold}% against {baseline}; see REGRESSION lines above"
        );
        std::process::exit(1);
    }
}

/// The deterministic data seed every `repro autotune` workload derives
/// its bytes from — printed with the results so a convergence check is
/// replayable bit-for-bit.
const AUTOTUNE_SEED: u64 = 0x5C03_2003;

/// One `repro autotune` workload: a repeated collective write whose
/// every op is identical, so per-op wall times are directly comparable
/// between the static sweep and the tuned run.
struct TuneWorkload {
    name: &'static str,
    nprocs: usize,
    nblock: u64,
    sblock: u64,
    count: u64,
    throttled: bool,
}

impl TuneWorkload {
    fn total(&self) -> u64 {
        self.count * self.nblock * self.sblock
    }

    fn span(&self) -> u64 {
        self.total() * self.nprocs as u64
    }

    fn make_shared(&self) -> lio_core::SharedFile {
        use lio_pfs::{MemFile, Throttle, ThrottledFile};
        use std::time::Duration;
        let shared = if self.throttled {
            let slow = Throttle {
                read_bw: 2e9,
                write_bw: 2e9,
                latency: Duration::from_millis(1),
            };
            lio_core::SharedFile::new(ThrottledFile::new(MemFile::new(), slow))
        } else {
            lio_core::SharedFile::new(MemFile::new())
        };
        shared.storage().set_len(self.span()).expect("prefault");
        shared
    }

    /// Run `nops` identical collective writes under `hints`; returns the
    /// slowest-rank wall time of each op, in seconds, plus the shared
    /// file (whose tuner report the caller may read).
    fn run(&self, hints: lio_core::Hints, nops: usize) -> (Vec<f64>, lio_core::SharedFile) {
        use lio_core::File;
        use lio_datatype::Datatype;
        use lio_mpi::World;
        use std::time::Instant;

        let shared = self.make_shared();
        let (nprocs, nblock, sblock, total) = (self.nprocs, self.nblock, self.sblock, self.total());
        let shared2 = shared.clone();
        let walls = World::run(nprocs, move |comm| {
            let me = comm.rank() as u64;
            let ft = lio_noncontig::figure4_filetype(me, nprocs as u64, nblock, sblock);
            let mut f = File::open(comm, shared2.clone(), hints).expect("open");
            f.set_view(0, Datatype::byte(), ft).expect("set_view");
            let mut x = AUTOTUNE_SEED ^ (me.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
            let data: Vec<u8> = (0..total)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> 32) as u8
                })
                .collect();
            let mut walls = Vec::with_capacity(nops);
            for _ in 0..nops {
                comm.barrier();
                let t = Instant::now();
                f.write_at_all(0, &data, total, &Datatype::byte())
                    .expect("write");
                walls.push(comm.allmax_f64(t.elapsed().as_secs_f64()));
            }
            walls
        });
        (walls[0].clone(), shared)
    }
}

/// `repro autotune`: the self-tuning loop closed end to end. For each
/// workload, an exhaustive static sweep over the tuner's knob grid
/// (engine × pipeline off/2/4 × collective-buffer size, each config
/// 1 warmup + 3 measured ops) establishes the best static wall time;
/// then a single file opened with nothing but `Hints::default()
/// .autotune(true)` runs the same ops from cold start. The convergence
/// table shows the knobs and wall of every tuned op; the gate — tuned
/// median-of-3 window within 10% of the best static config in ≤ 8 ops —
/// lands in the schema-versioned `BENCH_autotune.json`, and a miss exits
/// nonzero (the ci.sh convergence check).
fn autotune_cmd(opts: &Opts) {
    use lio_core::{Engine, Hints};
    use lio_obs::profile;

    const CONVERGE_WITHIN_OPS: usize = 8;
    const CONVERGE_TOL: f64 = 0.10;
    let nblock: u64 = if opts.quick { 256 } else { 1024 };
    println!(
        "# autotune: online knob adaptation vs exhaustive static sweep \
         (data seed {AUTOTUNE_SEED:#x})"
    );

    // consume the one-shot env checks, then drive recording explicitly:
    // the tuner is fed by the obs phase clocks and cold-starts from the
    // live profile
    lio_obs::init_from_env();
    profile::init_from_env();

    let workloads = [
        // storage-bound: 1 ms/op throttled device, where pipelining and
        // window geometry matter — the tuner must find them
        TuneWorkload {
            name: "fig6_throttled",
            nprocs: 4,
            nblock,
            sblock: 64,
            count: 16,
            throttled: true,
        },
        // memory-speed small blocks: defaults are already near-optimal —
        // the tuner must converge by *not* thrashing knobs
        TuneWorkload {
            name: "fig5_mem",
            nprocs: 4,
            nblock,
            sblock: 8,
            count: 1024,
            throttled: false,
        },
    ];

    let median3 = |w: &[f64]| -> f64 {
        let mut v = [w[0], w[1], w[2]];
        v.sort_by(f64::total_cmp);
        v[1]
    };

    let mut entries: Vec<lio_bench::schema::Entry> = Vec::new();
    let mut csv = String::from("workload,op,knobs,wall_ms\n");
    let mut gate_failures: Vec<String> = Vec::new();
    for wl in &workloads {
        // ----- static sweep -------------------------------------------
        // both arms run fully instrumented (obs + profiler): the tuned
        // run needs the live profile for its cold-start jump, and the
        // static configs must carry identical recording cost or the
        // comparison measures instrumentation, not knobs
        lio_obs::reset();
        lio_obs::set_enabled(true);
        profile::reset();
        profile::set_enabled(true);
        let cb_default = Hints::default().cb_buffer_size;
        let cb_geom = profile::cb_target(wl.span()) as usize;
        let mut cbs = vec![cb_default];
        if cb_geom != cb_default {
            cbs.push(cb_geom);
        }
        let mut best_static = f64::INFINITY;
        let mut best_name = String::new();
        let mut best_hints = Hints::default();
        println!("  {}: static sweep", wl.name);
        for engine in [Engine::ListBased, Engine::Listless] {
            for depth in [0usize, 2, 4] {
                for &cb in &cbs {
                    let mut h = Hints::with_engine(engine).cb_buffer(cb);
                    if depth > 0 {
                        h = h.pipelined(true).pipeline_depth(depth);
                    }
                    let (walls, _) = wl.run(h, 4);
                    let wall = median3(&walls[1..]);
                    let label = format!(
                        "{:?}/pipe={}/cb={cb}",
                        engine,
                        if depth > 0 {
                            format!("x{depth}")
                        } else {
                            "off".to_string()
                        }
                    );
                    println!("    {label:<40} {:>9.3} ms", wall * 1e3);
                    if wall < best_static {
                        best_static = wall;
                        best_name = label;
                        best_hints = h;
                    }
                }
            }
        }
        // min over twelve noisy medians is biased low (winner's curse):
        // re-measure the winning config on a fresh file for an unbiased
        // estimate of its true cost. Gate on the slower of the two
        // estimates, capped at 1.5x the sweep value so one pathological
        // re-run can't void the gate entirely.
        let (rewalls, _) = wl.run(best_hints, 4);
        let remeasured = median3(&rewalls[1..]);
        best_static = best_static.max(remeasured.min(best_static * 1.5));
        println!(
            "    best static: {best_name} at {:.3} ms (re-measured)",
            best_static * 1e3
        );

        // ----- tuned run from cold-start hints ------------------------
        lio_obs::reset();
        lio_obs::set_enabled(true);
        profile::reset();
        profile::set_enabled(true);
        let nops = 12usize;
        let (walls, shared) = wl.run(Hints::default().autotune(true), nops);
        profile::set_enabled(false);
        let report = shared.tune_report().expect("tuner was armed");

        // ----- convergence table --------------------------------------
        println!(
            "  {}: tuned run (cold start from defaults; {} decisions, {} discarded, settled={})",
            wl.name,
            report.decisions.len(),
            report.discarded,
            report.settled
        );
        println!("    {:>3} {:<42} {:>10}", "op", "knobs", "wall ms");
        for (i, wall) in walls.iter().enumerate() {
            let knobs = report
                .ops
                .get(i)
                .map(|o| o.knobs.clone())
                .unwrap_or_default();
            println!("    {i:>3} {knobs:<42} {:>10.3}", wall * 1e3);
            writeln!(csv, "{},{i},{knobs},{:.4}", wl.name, wall * 1e3).unwrap();
        }
        for d in &report.decisions {
            println!(
                "      op {:>2}: {:<10} {}  [{}]",
                d.op, d.action, d.knob, d.signal
            );
        }

        // first op whose 3-op median window reaches the static best
        let converged_op = (0..=nops.saturating_sub(3))
            .find(|&i| median3(&walls[i..i + 3]) <= best_static * (1.0 + CONVERGE_TOL));
        let settled_wall = median3(&walls[nops - 3..]);
        match converged_op {
            Some(i) => println!(
                "    converged at op {i}: window median {:.3} ms vs static best {:.3} ms (+10% gate)",
                median3(&walls[i..i + 3]) * 1e3,
                best_static * 1e3
            ),
            None => println!(
                "    NOT converged in {nops} ops: settled {:.3} ms vs static best {:.3} ms",
                settled_wall * 1e3,
                best_static * 1e3
            ),
        }
        if converged_op.is_none_or(|i| i > CONVERGE_WITHIN_OPS) {
            gate_failures.push(format!(
                "{}: tuned run did not reach {:.0}% of the best static config \
                 ({best_name}, {:.3} ms) within {CONVERGE_WITHIN_OPS} ops",
                wl.name,
                (1.0 + CONVERGE_TOL) * 100.0,
                best_static * 1e3
            ));
        }

        let reverts = report
            .decisions
            .iter()
            .filter(|d| d.action == "revert")
            .count();
        let e = |config: String, metric: &str, value: f64, unit: &'static str| {
            lio_bench::schema::Entry::new("autotune", config, metric, value, unit)
        };
        entries.push(e(
            format!("{}/static_best", wl.name),
            "wall_ns",
            best_static * 1e9,
            "ns",
        ));
        entries.push(e(
            format!("{}/tuned_settled", wl.name),
            "wall_ns",
            settled_wall * 1e9,
            "ns",
        ));
        entries.push(e(
            wl.name.to_string(),
            "converged_op",
            converged_op.map_or(nops as f64, |i| i as f64),
            "ops",
        ));
        entries.push(e(
            wl.name.to_string(),
            "decisions",
            report.decisions.len() as f64,
            "count",
        ));
        entries.push(e(wl.name.to_string(), "reverts", reverts as f64, "count"));
    }
    lio_obs::set_enabled(false);

    save("results/autotune.csv", &csv);
    lio_bench::schema::write_bench_json(
        "BENCH_autotune.json",
        &entries,
        &[
            ("seed", format!("{AUTOTUNE_SEED}")),
            ("nblock", nblock.to_string()),
            ("converge_within_ops", CONVERGE_WITHIN_OPS.to_string()),
        ],
    );
    if !gate_failures.is_empty() {
        for g in &gate_failures {
            eprintln!("autotune: FAIL — {g}");
        }
        std::process::exit(1);
    }
}

/// The tile-I/O kernel of the paper's related work \[1\] (Ching et al.):
/// ghost-bordered 2D tiles, both engines, by element size.
fn tileio(opts: &Opts) {
    use lio_noncontig::tile::{run_tileio, TileConfig};

    let tile: u64 = if opts.quick { 64 } else { 128 };
    println!("# tileio: 2D ghost-tile access (4 ranks, {tile}x{tile} tiles, overlap 2)");
    let mut csv = String::from("elem_size,engine,write_bpp,read_bpp\n");
    println!(
        "{:>10} {:<11} {:>12} {:>12}",
        "elem B", "engine", "write Bpp", "read Bpp"
    );
    for elem_size in [8u32, 64, 1024] {
        for (engine, ename) in ENGINES {
            let mut cfg = TileConfig::new(2, 2);
            cfg.tile = (tile, tile);
            cfg.elem_size = elem_size;
            cfg.overlap = 2;
            cfg.engine = engine;
            cfg.reps = 3;
            let r = run_tileio(&cfg);
            println!(
                "{:>10} {:<11} {:>12.2} {:>12.2}",
                elem_size, ename, r.write_bpp, r.read_bpp
            );
            writeln!(
                csv,
                "{elem_size},{ename},{:.3},{:.3}",
                r.write_bpp, r.read_bpp
            )
            .unwrap();
        }
    }
    save("results/tileio.csv", &csv);
}
