//! # lio-bench — benchmark harness
//!
//! Self-contained micro-benchmarks (pack, flatten, navigate, sieve, ...)
//! plus the `repro` runner that regenerates every figure and table of the
//! paper. The [`harness`] module is a minimal timing loop standing in for
//! an external bench framework: calibrated batch sizes, median-of-samples
//! reporting, and throughput lines, with no dependencies.

pub mod harness;
pub mod pipebench;
pub mod schema;

/// Format a byte count the way the paper's axes do (8, 64, 1 k, 16 k...).
pub fn human_bytes(n: u64) -> String {
    if n >= 1 << 20 {
        format!("{} M", n >> 20)
    } else if n >= 1 << 10 {
        format!("{} k", n >> 10)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_format() {
        assert_eq!(human_bytes(8), "8");
        assert_eq!(human_bytes(1024), "1 k");
        assert_eq!(human_bytes(16384), "16 k");
        assert_eq!(human_bytes(1 << 21), "2 M");
    }
}
