//! A tile-I/O kernel, after the `mpi-tile-io` benchmark used by the
//! paper's related work (Ching et al., "Noncontiguous I/O through PVFS",
//! reference \[1\]): a dense 2D array on file is accessed as a grid of
//! per-process tiles, optionally extended by a ghost border that overlaps
//! the neighbours' tiles — the access pattern of visualization and
//! stencil restart workloads.
//!
//! Writes touch the disjoint tile interiors; reads fetch the
//! ghost-extended tiles (overlapping regions are read by several
//! processes — legal and common). Both are single collective calls over
//! subarray fileviews.

use std::time::Instant;

use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Order};
use lio_mpi::World;
use lio_pfs::MemFile;

use crate::{Access, Engine};

/// Tile-I/O configuration.
#[derive(Debug, Clone)]
pub struct TileConfig {
    /// Process grid (tiles in y, tiles in x); `ty · tx` ranks run.
    pub tiles: (u64, u64),
    /// Elements per tile (y, x).
    pub tile: (u64, u64),
    /// Bytes per element.
    pub elem_size: u32,
    /// Ghost border in elements, applied on every side of a tile for the
    /// read phase (clipped at the array edges).
    pub overlap: u64,
    /// Engine under test.
    pub engine: Engine,
    /// Independent or collective access.
    pub access: Access,
    /// Verify the data read back.
    pub verify: bool,
    /// Timing repetitions (min is reported).
    pub reps: u32,
}

impl TileConfig {
    /// A small default configuration on a `py × px` grid.
    pub fn new(tiles_y: u64, tiles_x: u64) -> TileConfig {
        TileConfig {
            tiles: (tiles_y, tiles_x),
            tile: (64, 64),
            elem_size: 32,
            overlap: 2,
            engine: Engine::Listless,
            access: Access::Collective,
            verify: false,
            reps: 2,
        }
    }

    /// Global array dimensions in elements (y, x).
    pub fn global(&self) -> (u64, u64) {
        (self.tiles.0 * self.tile.0, self.tiles.1 * self.tile.1)
    }
}

/// Result of a tile-I/O run.
#[derive(Debug, Clone, Copy)]
pub struct TileResult {
    /// Write bandwidth per process (tile interiors), MB/s.
    pub write_bpp: f64,
    /// Read bandwidth per process (ghost-extended tiles), MB/s.
    pub read_bpp: f64,
    /// Bytes written per process.
    pub write_bytes: u64,
    /// Bytes read per process (varies with clipping; rank-0 value).
    pub read_bytes: u64,
}

/// The element value at global position `(gy, gx)` — the verification
/// oracle.
fn elem_tag(gy: u64, gx: u64) -> u8 {
    (gy.wrapping_mul(31).wrapping_add(gx.wrapping_mul(17)) % 251) as u8
}

/// Run the kernel. Spawns `tiles.0 * tiles.1` ranks.
pub fn run_tileio(cfg: &TileConfig) -> TileResult {
    let (gy, gx) = cfg.global();
    let esz = cfg.elem_size as u64;
    let shared = SharedFile::new(MemFile::with_capacity((gy * gx * esz) as usize));
    shared.storage().set_len(gy * gx * esz).expect("prefault");
    let nprocs = (cfg.tiles.0 * cfg.tiles.1) as usize;

    let cfg2 = cfg.clone();
    let shared2 = shared.clone();
    let results = World::run(nprocs, move |comm| {
        let me = comm.rank() as u64;
        let (py, px) = (me / cfg2.tiles.1, me % cfg2.tiles.1);
        let esz64 = cfg2.elem_size as u64;

        // interior tile bounds
        let y0 = py * cfg2.tile.0;
        let x0 = px * cfg2.tile.1;

        // ghost-extended bounds, clipped to the array
        let ry0 = y0.saturating_sub(cfg2.overlap);
        let rx0 = x0.saturating_sub(cfg2.overlap);
        let ry1 = (y0 + cfg2.tile.0 + cfg2.overlap).min(gy);
        let rx1 = (x0 + cfg2.tile.1 + cfg2.overlap).min(gx);

        let elem = Datatype::basic(cfg2.elem_size);
        let write_view = Datatype::subarray(
            &[gy, gx],
            &[cfg2.tile.0, cfg2.tile.1],
            &[y0, x0],
            Order::C,
            &elem,
        )
        .expect("write subarray");
        let read_view = Datatype::subarray(
            &[gy, gx],
            &[ry1 - ry0, rx1 - rx0],
            &[ry0, rx0],
            Order::C,
            &elem,
        )
        .expect("read subarray");

        let hints = Hints::with_engine(cfg2.engine);
        let mut f = File::open(comm, shared2.clone(), hints).expect("open");

        // --- write the interior -------------------------------------
        let wbytes = cfg2.tile.0 * cfg2.tile.1 * esz64;
        let mut wbuf = Vec::with_capacity(wbytes as usize);
        for y in y0..y0 + cfg2.tile.0 {
            for x in x0..x0 + cfg2.tile.1 {
                wbuf.extend(std::iter::repeat_n(elem_tag(y, x), esz64 as usize));
            }
        }
        f.set_view(0, elem.clone(), write_view)
            .expect("set write view");
        let mut wsecs = f64::INFINITY;
        for _ in 0..cfg2.reps.max(1) {
            comm.barrier();
            let t = Instant::now();
            match cfg2.access {
                Access::Collective => f
                    .write_at_all(0, &wbuf, wbytes, &Datatype::byte())
                    .expect("write"),
                Access::Independent => f
                    .write_at(0, &wbuf, wbytes, &Datatype::byte())
                    .expect("write"),
            };
            comm.barrier();
            wsecs = wsecs.min(comm.allmax_f64(t.elapsed().as_secs_f64()));
        }

        // --- read the ghost-extended tile ----------------------------
        let rbytes = (ry1 - ry0) * (rx1 - rx0) * esz64;
        let mut rbuf = vec![0u8; rbytes as usize];
        f.set_view(0, elem.clone(), read_view)
            .expect("set read view");
        let mut rsecs = f64::INFINITY;
        for _ in 0..cfg2.reps.max(1) {
            comm.barrier();
            let t = Instant::now();
            match cfg2.access {
                Access::Collective => f
                    .read_at_all(0, &mut rbuf, rbytes, &Datatype::byte())
                    .expect("read"),
                Access::Independent => f
                    .read_at(0, &mut rbuf, rbytes, &Datatype::byte())
                    .expect("read"),
            };
            comm.barrier();
            rsecs = rsecs.min(comm.allmax_f64(t.elapsed().as_secs_f64()));
        }

        if cfg2.verify {
            // every element of the ghost-extended tile, including the
            // parts written by neighbours, carries its oracle tag
            let rw = rx1 - rx0;
            for y in ry0..ry1 {
                for x in rx0..rx1 {
                    let o = (((y - ry0) * rw + (x - rx0)) * esz64) as usize;
                    let want = elem_tag(y, x);
                    assert!(
                        rbuf[o..o + esz64 as usize].iter().all(|&b| b == want),
                        "rank {me} element ({y},{x})"
                    );
                }
            }
        }

        (wsecs, rsecs, wbytes, rbytes)
    });

    let (wsecs, rsecs, wbytes, rbytes) = results[0];
    TileResult {
        write_bpp: wbytes as f64 / wsecs / 1e6,
        read_bpp: rbytes as f64 / rsecs / 1e6,
        write_bytes: wbytes,
        read_bytes: rbytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tileio_verifies_both_engines_collective() {
        for engine in [Engine::ListBased, Engine::Listless] {
            let mut cfg = TileConfig::new(2, 2);
            cfg.tile = (16, 16);
            cfg.elem_size = 8;
            cfg.overlap = 3;
            cfg.engine = engine;
            cfg.verify = true;
            cfg.reps = 1;
            let r = run_tileio(&cfg);
            assert!(r.write_bpp > 0.0 && r.read_bpp > 0.0);
            assert_eq!(r.write_bytes, 16 * 16 * 8);
            // rank 0's ghost tile is clipped at the top-left corner
            assert_eq!(r.read_bytes, (16 + 3) * (16 + 3) * 8);
        }
    }

    #[test]
    fn tileio_independent_mode() {
        let mut cfg = TileConfig::new(2, 2);
        cfg.tile = (8, 8);
        cfg.elem_size = 4;
        cfg.overlap = 1;
        cfg.access = Access::Independent;
        cfg.verify = true;
        cfg.reps = 1;
        run_tileio(&cfg);
    }

    #[test]
    fn tileio_no_overlap() {
        let mut cfg = TileConfig::new(1, 3);
        cfg.tile = (4, 4);
        cfg.elem_size = 2;
        cfg.overlap = 0;
        cfg.verify = true;
        cfg.reps = 1;
        let r = run_tileio(&cfg);
        assert_eq!(r.read_bytes, r.write_bytes);
    }

    #[test]
    fn tileio_overlap_larger_than_tile_clips() {
        let mut cfg = TileConfig::new(2, 2);
        cfg.tile = (4, 4);
        cfg.elem_size = 2;
        cfg.overlap = 10; // ghost swallows the whole array
        cfg.verify = true;
        cfg.reps = 1;
        let r = run_tileio(&cfg);
        // rank 0 reads the entire 8x8 array
        assert_eq!(r.read_bytes, 8 * 8 * 2);
    }
}
