//! CLI for the `noncontig` synthetic benchmark.
//!
//! ```text
//! noncontig --procs 4 --nblock 1024 --sblock 8 --pattern nc-nc \
//!           --access collective --engine listless --data 4194304
//! ```

use lio_noncontig::{run, Access, Config, Engine, Pattern};

fn usage() -> ! {
    eprintln!(
        "usage: noncontig [--procs N] [--nblock N] [--sblock BYTES] \
         [--pattern c-c|nc-c|c-nc|nc-nc] [--access independent|collective] \
         [--engine list-based|listless] [--data BYTES] [--verify]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = Config::new(2, 64, 8);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || -> String { args.next().unwrap_or_else(|| usage()) };
        match arg.as_str() {
            "--procs" => cfg.nprocs = val().parse().unwrap_or_else(|_| usage()),
            "--nblock" => cfg.nblock = val().parse().unwrap_or_else(|_| usage()),
            "--sblock" => cfg.sblock = val().parse().unwrap_or_else(|_| usage()),
            "--data" => cfg.bytes_per_proc = val().parse().unwrap_or_else(|_| usage()),
            "--pattern" => cfg.pattern = Pattern::parse(&val()).unwrap_or_else(|| usage()),
            "--access" => {
                cfg.access = match val().as_str() {
                    "independent" => Access::Independent,
                    "collective" => Access::Collective,
                    _ => usage(),
                }
            }
            "--engine" => {
                cfg.engine = match val().as_str() {
                    "list-based" => Engine::ListBased,
                    "listless" => Engine::Listless,
                    _ => usage(),
                }
            }
            "--verify" => cfg.verify = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let r = run(&cfg);
    println!(
        "noncontig P={} Nblock={} Sblock={} pattern={} access={:?} engine={:?}",
        cfg.nprocs,
        cfg.nblock,
        cfg.sblock,
        cfg.pattern.label(),
        cfg.access,
        cfg.engine,
    );
    println!(
        "  bytes/proc = {}  write Bpp = {:.2} MB/s ({:.4}s)  read Bpp = {:.2} MB/s ({:.4}s)",
        r.bytes_per_proc, r.write_bpp, r.write_secs, r.read_bpp, r.read_secs
    );
}
