//! # lio-noncontig — the paper's synthetic benchmark
//!
//! A faithful reimplementation of the highly configurable `noncontig`
//! benchmark of Section 4.1: processes write and read back a file through
//! a vector-like fileview (Figure 4), with the access pattern, vector
//! length `Nblock`, block size `Sblock`, process count, engine, and access
//! mode (independent/collective) all parameterizable. The figures of the
//! paper are sweeps over these parameters:
//!
//! * Figure 5 — `Bpp` vs `Nblock`, independent, `Sblock` = 8 B, P = 2;
//! * Figure 6 — `Bpp` vs `Nblock`, collective, P = 8;
//! * Figure 7 — `Bpp` vs `Sblock`, independent, `Nblock` = 8, P = 2;
//! * Figure 8 — `Bpp` vs P, collective, `Sblock` = 2048 B.

pub mod tile;

use std::time::Instant;

use lio_core::{File, Hints, SharedFile};
use lio_datatype::{Datatype, Field};
use lio_mpi::World;
use lio_pfs::MemFile;

pub use lio_core::Engine;

/// The four memory/file layout combinations of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Contiguous memory, contiguous file.
    CC,
    /// Non-contiguous memory, contiguous file.
    NcC,
    /// Contiguous memory, non-contiguous file.
    CNc,
    /// Non-contiguous memory, non-contiguous file.
    NcNc,
}

impl Pattern {
    /// All four patterns.
    pub fn all() -> [Pattern; 4] {
        [Pattern::CC, Pattern::NcC, Pattern::CNc, Pattern::NcNc]
    }

    /// The paper's figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::CC => "c-c",
            Pattern::NcC => "nc-c",
            Pattern::CNc => "c-nc",
            Pattern::NcNc => "nc-nc",
        }
    }

    /// Parse a label like `nc-nc`.
    pub fn parse(s: &str) -> Option<Pattern> {
        match s {
            "c-c" => Some(Pattern::CC),
            "nc-c" => Some(Pattern::NcC),
            "c-nc" => Some(Pattern::CNc),
            "nc-nc" => Some(Pattern::NcNc),
            _ => None,
        }
    }
}

/// Independent or collective file access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// `write_at` / `read_at`.
    Independent,
    /// `write_at_all` / `read_at_all` (two-phase).
    Collective,
}

/// One benchmark configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of processes.
    pub nprocs: usize,
    /// Vector length (`blockcount` — the paper's `Nblock`).
    pub nblock: u64,
    /// Size of each contiguous block in bytes (the paper's `Sblock`).
    pub sblock: u64,
    /// Memory/file layout combination.
    pub pattern: Pattern,
    /// Independent or collective access.
    pub access: Access,
    /// Engine (list-based or listless).
    pub engine: Engine,
    /// Bytes moved per process per direction (rounded down to a whole
    /// number of datatype instances, minimum one instance).
    pub bytes_per_proc: u64,
    /// Verify the read-back against the written data.
    pub verify: bool,
    /// Collective buffer override.
    pub cb_buffer: Option<usize>,
    /// Independent sieving buffer override.
    pub ind_buffer: Option<usize>,
    /// Timing repetitions; the fastest is reported (min-of-N suppresses
    /// scheduler noise, which dominates at millisecond scales).
    pub reps: u32,
}

impl Config {
    /// A small default configuration.
    pub fn new(nprocs: usize, nblock: u64, sblock: u64) -> Config {
        Config {
            nprocs,
            nblock,
            sblock,
            pattern: Pattern::NcNc,
            access: Access::Independent,
            engine: Engine::Listless,
            bytes_per_proc: 1 << 20,
            verify: false,
            cb_buffer: None,
            ind_buffer: None,
            reps: 3,
        }
    }

    fn hints(&self) -> Hints {
        let mut h = Hints::with_engine(self.engine);
        if let Some(cb) = self.cb_buffer {
            h = h.cb_buffer(cb);
        }
        if let Some(ib) = self.ind_buffer {
            h = h.ind_buffer(ib);
        }
        h
    }
}

/// Measured result of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Write bandwidth per process, MB/s (data volume / slowest process).
    pub write_bpp: f64,
    /// Read bandwidth per process, MB/s.
    pub read_bpp: f64,
    /// Bytes actually moved per process per direction.
    pub bytes_per_proc: u64,
    /// Wall-clock seconds of the write phase (slowest process).
    pub write_secs: f64,
    /// Wall-clock seconds of the read phase (slowest process).
    pub read_secs: f64,
}

/// The fileview of Figure 4 for rank `p` of `nprocs`: an LB/vector/UB
/// struct over blocks of `sblock` bytes, with the vector placed at
/// `disp = p·sblock` **inside** the struct (exactly as the paper's
/// Figure 4 draws it) and `stride = nprocs·sblock`, so the ranks'
/// accesses interleave without overlap, the extent covers all ranks'
/// data, and every rank uses fileview displacement 0 — the condition the
/// mergeview optimization needs (Section 3.2.3).
pub fn figure4_filetype(p: u64, nprocs: u64, nblock: u64, sblock: u64) -> Datatype {
    let block = Datatype::basic(u32::try_from(sblock).expect("sblock fits u32"));
    let v = Datatype::vector(nblock, 1, nprocs as i64, &block).expect("vector");
    let extent = (nblock * nprocs * sblock) as i64;
    Datatype::struct_type(vec![
        Field {
            disp: 0,
            count: 1,
            child: Datatype::lb_marker(),
        },
        Field {
            disp: (p * sblock) as i64,
            count: 1,
            child: v,
        },
        Field {
            disp: extent,
            count: 1,
            child: Datatype::ub_marker(),
        },
    ])
    .expect("figure-4 struct")
}

/// The non-contiguous memtype: the same vector shape with a fixed
/// interleave factor of 2 (half-dense memory, as in a typical
/// struct-of-arrays buffer).
pub fn noncontig_memtype(nblock: u64, sblock: u64) -> Datatype {
    let block = Datatype::basic(u32::try_from(sblock).expect("sblock fits u32"));
    Datatype::vector(nblock, 1, 2, &block).expect("memtype vector")
}

/// Run one benchmark configuration and report bandwidths.
///
/// Every process writes `bytes_per_proc` bytes through its view and reads
/// them back; bandwidth-per-process uses the slowest process's time, as a
/// parallel benchmark must.
pub fn run(cfg: &Config) -> RunResult {
    let inst_bytes = cfg.nblock * cfg.sblock;
    let count = (cfg.bytes_per_proc / inst_bytes).max(1);
    let total = count * inst_bytes;
    let hints = cfg.hints();
    let shared = SharedFile::new(MemFile::with_capacity((total * cfg.nprocs as u64) as usize));
    // Pre-fault the file pages so the first engine measured does not pay
    // the page-fault cost the second one would skip.
    shared
        .storage()
        .set_len(total * cfg.nprocs as u64)
        .expect("prefault file");

    let cfg2 = cfg.clone();
    let shared2 = shared.clone();
    let results = World::run(cfg.nprocs, move |comm| {
        let me = comm.rank() as u64;
        let p = comm.size() as u64;
        let mut f = File::open(comm, shared2.clone(), hints).expect("open");

        // --- fileview -------------------------------------------------
        let file_noncontig = matches!(cfg2.pattern, Pattern::CNc | Pattern::NcNc);
        if file_noncontig {
            let ft = figure4_filetype(me, p, cfg2.nblock, cfg2.sblock);
            f.set_view(0, Datatype::byte(), ft).expect("set_view");
        } else {
            // contiguous partition: rank p owns [p·total, (p+1)·total)
            let ft = Datatype::contiguous(inst_bytes, &Datatype::byte()).expect("contig ft");
            f.set_view(me * total, Datatype::byte(), ft)
                .expect("set_view");
        }

        // --- memtype ----------------------------------------------------
        let mem_noncontig = matches!(cfg2.pattern, Pattern::NcC | Pattern::NcNc);
        let (memtype, mcount, span) = if mem_noncontig {
            let mt = noncontig_memtype(cfg2.nblock, cfg2.sblock);
            let span = (count as i64 - 1) * mt.extent() as i64 + mt.data_ub();
            (mt, count, span as usize)
        } else {
            (
                Datatype::contiguous(total, &Datatype::byte()).expect("contig mt"),
                1,
                total as usize,
            )
        };
        let mut user: Vec<u8> = (0..span).map(|i| (i as u64 * 131 + me) as u8).collect();

        // --- write phase (min over repetitions) --------------------------
        let reps = cfg2.reps.max(1);
        let mut write_secs = f64::INFINITY;
        for _ in 0..reps {
            comm.barrier();
            let t0 = Instant::now();
            match cfg2.access {
                Access::Independent => {
                    f.write_at(0, &user, mcount, &memtype).expect("write");
                }
                Access::Collective => {
                    f.write_at_all(0, &user, mcount, &memtype)
                        .expect("write_at_all");
                }
            }
            comm.barrier();
            write_secs = write_secs.min(comm.allmax_f64(t0.elapsed().as_secs_f64()));
        }

        // --- read phase (min over repetitions) ----------------------------
        let reference = cfg2.verify.then(|| user.clone());
        user.fill(0);
        let mut read_secs = f64::INFINITY;
        for _ in 0..reps {
            comm.barrier();
            let t1 = Instant::now();
            match cfg2.access {
                Access::Independent => {
                    f.read_at(0, &mut user, mcount, &memtype).expect("read");
                }
                Access::Collective => {
                    f.read_at_all(0, &mut user, mcount, &memtype)
                        .expect("read_at_all");
                }
            }
            comm.barrier();
            read_secs = read_secs.min(comm.allmax_f64(t1.elapsed().as_secs_f64()));
        }

        if let Some(want) = reference {
            for r in lio_datatype::typemap::expand(&memtype, mcount) {
                let o = r.disp as usize;
                assert_eq!(
                    &user[o..o + r.len as usize],
                    &want[o..o + r.len as usize],
                    "verification failed at run {r:?}"
                );
            }
        }
        (write_secs, read_secs)
    });

    let (write_secs, read_secs) = results[0];
    const MB: f64 = 1.0e6;
    RunResult {
        write_bpp: total as f64 / write_secs / MB,
        read_bpp: total as f64 / read_secs / MB,
        bytes_per_proc: total,
        write_secs,
        read_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(pattern: Pattern, access: Access, engine: Engine) -> Config {
        Config {
            nprocs: 2,
            nblock: 16,
            sblock: 8,
            pattern,
            access,
            engine,
            bytes_per_proc: 16 * 8 * 4,
            verify: true,
            cb_buffer: Some(1 << 16),
            ind_buffer: Some(1 << 16),
            reps: 1,
        }
    }

    #[test]
    fn figure4_type_shape() {
        let ft = figure4_filetype(0, 4, 10, 8);
        assert_eq!(ft.size(), 80);
        assert_eq!(ft.extent(), 4 * 10 * 8);
        assert!(ft.is_monotone());
        assert_eq!(ft.leaf_runs(), 10);
    }

    #[test]
    fn all_patterns_verify_independent() {
        for engine in [Engine::ListBased, Engine::Listless] {
            for pattern in Pattern::all() {
                let r = run(&quick(pattern, Access::Independent, engine));
                assert!(r.write_bpp > 0.0);
                assert!(r.read_bpp > 0.0);
                assert_eq!(r.bytes_per_proc, 16 * 8 * 4);
            }
        }
    }

    #[test]
    fn all_patterns_verify_collective() {
        for engine in [Engine::ListBased, Engine::Listless] {
            for pattern in Pattern::all() {
                let r = run(&quick(pattern, Access::Collective, engine));
                assert!(r.write_bpp > 0.0);
                assert!(r.read_bpp > 0.0);
            }
        }
    }

    #[test]
    fn single_process_works() {
        for access in [Access::Independent, Access::Collective] {
            let mut c = quick(Pattern::NcNc, access, Engine::Listless);
            c.nprocs = 1;
            let r = run(&c);
            assert!(r.write_bpp > 0.0);
        }
    }

    #[test]
    fn pattern_labels_roundtrip() {
        for p in Pattern::all() {
            assert_eq!(Pattern::parse(p.label()), Some(p));
        }
        assert_eq!(Pattern::parse("bogus"), None);
    }

    #[test]
    fn bytes_rounded_to_instances() {
        let mut c = quick(Pattern::CNc, Access::Independent, Engine::Listless);
        c.bytes_per_proc = 1000; // instance = 128 bytes
        let r = run(&c);
        assert_eq!(r.bytes_per_proc, 128 * 7);
    }
}
