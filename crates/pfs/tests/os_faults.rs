//! Fault-plan coverage for the real-file backend.
//!
//! A [`FaultyFile`] placed *beneath* the submission queue is the device
//! the worker threadpool calls, so every injected short transfer,
//! transient error, and flush failure lands on the workers' retry path.
//! These tests prove that the [`lio_pfs::retry`] semantics the
//! synchronous backends rely on hold identically on the real-file path:
//! survivable plans always complete with the right bytes, and fail-stop
//! plans surface permanent errors through the facade.

use lio_pfs::decorate::{FaultPlan, FaultyFile};
use lio_pfs::{MemFile, OsConfig, OsFile, QueueConfig, StorageFile};
use std::sync::Arc;

/// A deterministic pseudorandom byte pattern.
fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

/// Small alignment + segment cap so modest transfers split into several
/// submissions, each a separate injection opportunity.
fn tight_config() -> OsConfig {
    OsConfig {
        queue: QueueConfig {
            workers: 2,
            depth: 16,
            shuffle_seed: None,
        },
        align: 512,
        max_seg: 2048,
    }
}

/// The queue over a seeded fault plan over shared memory. The returned
/// [`FaultyFile`] handle observes injection counts; the [`MemFile`] is
/// the injection-free ground truth.
fn faulty_stack(plan: FaultPlan) -> (OsFile, Arc<FaultyFile<Arc<MemFile>>>, Arc<MemFile>) {
    let mem = Arc::new(MemFile::new());
    let faulty = Arc::new(FaultyFile::new(Arc::clone(&mem), plan));
    let f = OsFile::over_arc(Arc::clone(&faulty) as Arc<dyn StorageFile>, tight_config());
    (f, faulty, mem)
}

#[test]
fn seeded_plans_survive_on_the_worker_path() {
    // The survivable default plan (shorts + bounded transients) must be
    // invisible through the facade for any seed: the workers resume and
    // retry, so reads/writes complete fully and correctly.
    for seed in 1..=6u64 {
        let plan = FaultPlan::seeded(seed);
        let (f, faulty, mem) = faulty_stack(plan);
        let data = pattern(24_000, seed);
        // Scattered unaligned writes, then a full read-back.
        let mut model = vec![0u8; 0];
        for (i, chunk) in data.chunks(5003).enumerate() {
            let off = (i * 5003) as u64 + 17; // unaligned, overlapping EOF
            assert_eq!(
                f.write_at(off, chunk)
                    .unwrap_or_else(|e| panic!("seed {seed}: write must survive the plan: {e}")),
                chunk.len()
            );
            let end = off as usize + chunk.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[off as usize..end].copy_from_slice(chunk);
        }
        let mut back = vec![0u8; model.len() + 100];
        let n = f
            .read_at(0, &mut back)
            .unwrap_or_else(|e| panic!("seed {seed}: read must survive the plan: {e}"));
        assert_eq!(n, model.len(), "seed {seed}: short only at EOF");
        assert_eq!(&back[..n], &model[..], "seed {seed}: bytes diverge");
        assert_eq!(mem.snapshot(), model, "seed {seed}: device bytes diverge");
        assert!(
            faulty.injected() > 0,
            "seed {seed}: the plan must actually have injected something"
        );
    }
}

#[test]
fn short_transfers_resume_to_eof() {
    // Shorts only: every access may be truncated, yet the facade reads
    // exactly to EOF because the workers resume short transfers.
    let plan = FaultPlan {
        seed: 99,
        short_per_256: 200,
        transient_per_256: 0,
        max_consecutive_transient: 0,
        torn_after: None,
        flush_fail_first: 0,
    };
    let (f, faulty, _mem) = faulty_stack(plan);
    let data = pattern(10_000, 99);
    assert_eq!(f.write_at(3, &data).unwrap(), data.len());
    let mut back = vec![0u8; 16_000];
    let n = f.read_at(0, &mut back).unwrap();
    assert_eq!(n, 3 + data.len(), "read is short only at true EOF");
    assert_eq!(&back[3..n], &data[..]);
    assert!(faulty.injected() > 0);
}

#[test]
fn transient_errors_are_retried_inside_workers() {
    let plan = FaultPlan {
        seed: 4242,
        short_per_256: 0,
        transient_per_256: 128,
        max_consecutive_transient: 3, // well below the retry budget
        torn_after: None,
        flush_fail_first: 0,
    };
    let (f, faulty, mem) = faulty_stack(plan);
    let data = pattern(8_192, 4242);
    assert_eq!(f.write_at(0, &data).unwrap(), data.len());
    assert_eq!(mem.snapshot(), data);
    let mut back = vec![0u8; data.len()];
    assert_eq!(f.read_at(0, &mut back).unwrap(), data.len());
    assert_eq!(back, data);
    assert!(faulty.injected() > 0, "transients must have been injected");
}

#[test]
fn flush_failures_are_retried() {
    let plan = FaultPlan {
        seed: 7,
        short_per_256: 0,
        transient_per_256: 0,
        max_consecutive_transient: 0,
        torn_after: None,
        flush_fail_first: 2,
    };
    let (f, faulty, _mem) = faulty_stack(plan);
    f.write_at(0, b"durable").unwrap();
    f.sync().expect("sync must survive transient flush faults");
    assert!(
        faulty.injected() >= 2,
        "both injected flush faults must have fired (got {})",
        faulty.injected()
    );
}

#[test]
fn torn_write_surfaces_as_permanent_error() {
    // A fail-stop plan is NOT survivable: the facade must report the
    // error (permanent errors pass straight through the workers' retry
    // loop) and the device must hold only the persisted prefix.
    let plan = FaultPlan {
        seed: 1,
        short_per_256: 0,
        transient_per_256: 0,
        max_consecutive_transient: 0,
        torn_after: Some(1000),
        flush_fail_first: 0,
    };
    let (f, _faulty, mem) = faulty_stack(plan);
    // One aligned segment (≤ max_seg), so exactly one submission tears.
    let data = pattern(2048, 1);
    let err = f.write_at(0, &data).expect_err("torn write must error");
    assert!(err.to_string().contains("torn write"), "got: {err}");
    assert_eq!(mem.len(), 1000, "only the prefix persists");
    assert_eq!(mem.snapshot(), data[..1000]);
}

#[test]
fn seeded_plan_survives_on_a_real_file() {
    // Same contract with a real kernel-backed file beneath the plan.
    let raw = Arc::new(lio_pfs::os::temp_unix().expect("temp file"));
    let faulty = Arc::new(FaultyFile::new(Arc::clone(&raw), FaultPlan::seeded(33)));
    let f = OsFile::over_arc(Arc::clone(&faulty) as Arc<dyn StorageFile>, tight_config());
    let data = pattern(20_000, 33);
    assert_eq!(f.write_at(11, &data).unwrap(), data.len());
    let mut back = vec![0u8; data.len()];
    assert_eq!(f.read_at(11, &mut back).unwrap(), data.len());
    assert_eq!(back, data);
    f.sync().expect("sync survives the default plan");
    assert!(faulty.injected() > 0);
}
