//! Alignment and edge-case suite for the submission-queue backend,
//! driven end-to-end through the public facade: unaligned head/tail
//! splits, zero-length submissions, transfers spanning EOF, completion
//! reordering under a seeded scheduler shuffle, and queue-full
//! backpressure. Each case runs differentially against a plain
//! [`MemFile`] mirror, so the facade's POSIX semantics are pinned
//! byte-for-byte rather than asserted piecemeal.

use lio_pfs::{MemFile, OsConfig, OsFile, QueueConfig, StorageFile};

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn cfg(
    workers: usize,
    depth: usize,
    shuffle: Option<u64>,
    align: usize,
    max_seg: usize,
) -> OsConfig {
    OsConfig {
        queue: QueueConfig {
            workers,
            depth,
            shuffle_seed: shuffle,
        },
        align,
        max_seg,
    }
}

/// Mirror every (offset, len) access on both files and demand identical
/// observable behavior: same return counts, same read bytes, same final
/// contents.
fn differential_sweep(f: &OsFile, mirror: &MemFile, accesses: &[(u64, usize)], seed: u64) {
    for (i, &(off, len)) in accesses.iter().enumerate() {
        let data = pattern(len, seed + i as u64);
        assert_eq!(
            f.write_at(off, &data).unwrap(),
            mirror.write_at(off, &data).unwrap(),
            "write count at ({off}, {len})"
        );
        let mut a = vec![0u8; len + 64];
        let mut b = vec![0u8; len + 64];
        let na = f.read_at(off.saturating_sub(9), &mut a).unwrap();
        let nb = mirror.read_at(off.saturating_sub(9), &mut b).unwrap();
        assert_eq!(na, nb, "read count at ({off}, {len})");
        assert_eq!(a[..na], b[..nb], "read bytes at ({off}, {len})");
        assert_eq!(f.len(), mirror.len(), "length after ({off}, {len})");
    }
    // Full-file comparison at the end.
    let n = mirror.len() as usize;
    let mut a = vec![0u8; n];
    assert_eq!(f.read_at(0, &mut a).unwrap(), n);
    assert_eq!(a, mirror.snapshot(), "final contents diverge");
}

/// Offsets/lengths chosen to hit every split shape: block-aligned,
/// head-only, tail-only, head+tail, sub-block, straddling one boundary,
/// and multi-segment bodies.
fn edge_accesses(align: u64) -> Vec<(u64, usize)> {
    let a = align;
    vec![
        (0, a as usize * 3),            // aligned, multi-segment body
        (a, a as usize),                // aligned single block
        (3, 100),                       // sub-block fragment
        (a - 1, 2),                     // straddles one boundary
        (a / 2, a as usize),            // head + tail, no aligned body
        (5, (a * 4) as usize + 7),      // head + body + tail
        (a * 7 + 13, (a * 2) as usize), // unaligned far write (extends)
        (0, 1),                         // single byte at zero
    ]
}

#[test]
fn unaligned_splits_match_memfile() {
    let align = 512u64;
    let f = OsFile::over(MemFile::new(), cfg(3, 16, None, align as usize, 1024));
    let mirror = MemFile::new();
    differential_sweep(&f, &mirror, &edge_accesses(align), 1000);
}

#[test]
fn zero_length_accesses_are_noops() {
    let f = OsFile::over(MemFile::new(), cfg(2, 8, None, 512, 1024));
    assert_eq!(f.write_at(100, &[]).unwrap(), 0);
    assert_eq!(f.len(), 0, "zero-length write must not extend");
    let mut empty: [u8; 0] = [];
    assert_eq!(f.read_at(0, &mut empty).unwrap(), 0);
    assert_eq!(f.read_at(1 << 30, &mut empty).unwrap(), 0);
    f.sync().unwrap();
}

#[test]
fn reads_spanning_eof_are_short_writes_extend() {
    let f = OsFile::over(
        MemFile::with_data(pattern(3000, 5)),
        cfg(2, 8, None, 512, 1024),
    );
    // Read window straddling EOF: short at exactly the boundary.
    let mut buf = vec![0xAAu8; 2048];
    let n = f.read_at(2500, &mut buf).unwrap();
    assert_eq!(n, 500, "short at EOF, not before");
    assert_eq!(buf[..500], pattern(3000, 5)[2500..]);
    // Entirely past EOF: empty.
    assert_eq!(f.read_at(10_000, &mut buf).unwrap(), 0);
    // Write past EOF extends with a zero hole, POSIX-style.
    assert_eq!(f.write_at(5000, b"tail").unwrap(), 4);
    assert_eq!(f.len(), 5004);
    let mut hole = vec![0xFFu8; 2004];
    assert_eq!(f.read_at(3000, &mut hole).unwrap(), 2004);
    assert!(
        hole[..2000].iter().all(|&b| b == 0),
        "the gap reads as zeros"
    );
    assert_eq!(&hole[2000..], b"tail");
}

#[test]
fn completion_reordering_is_invisible_through_the_facade() {
    // One worker + seeded shuffle: submissions complete in a
    // deterministic non-FIFO order, and the facade must reassemble
    // identical bytes anyway. Two different seeds double-check that the
    // result does not depend on the schedule.
    let align = 512u64;
    for seed in [0x5EED_0001u64, 0xD15C_0BADu64] {
        let f = OsFile::over(MemFile::new(), cfg(1, 32, Some(seed), align as usize, 1024));
        let mirror = MemFile::new();
        differential_sweep(&f, &mirror, &edge_accesses(align), 2000);
    }
}

#[test]
fn queue_full_backpressure_still_completes() {
    // Depth 1 and a tiny max_seg force a 96 KiB transfer through ~192
    // sequential submissions, saturating the queue; the blocking submit
    // path must absorb the backpressure and complete correctly.
    let f = OsFile::over(MemFile::new(), cfg(2, 1, None, 512, 512));
    let data = pattern(96 * 1024, 9);
    assert_eq!(f.write_at(1, &data).unwrap(), data.len());
    let mut back = vec![0u8; data.len()];
    assert_eq!(f.read_at(1, &mut back).unwrap(), data.len());
    assert_eq!(back, data);
}

#[test]
fn real_file_edge_sweep() {
    // The same split shapes against a real kernel-backed temp file.
    let align = 4096u64;
    let f = OsFile::over(
        lio_pfs::os::temp_unix().expect("temp file"),
        cfg(3, 16, None, align as usize, 8192),
    );
    let mirror = MemFile::new();
    differential_sweep(&f, &mirror, &edge_accesses(align), 3000);
}
