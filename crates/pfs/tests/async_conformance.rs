//! Async-completion conformance: the decorators in `decorate.rs` were
//! written against synchronous backends, and their accounting assumes
//! the call that passes through them *is* the I/O. [`OsFile`] completes
//! asynchronously behind its facade, so these tests pin the contract
//! that keeps the decorators correct in both arrangements:
//!
//! * a decorator **above** the queue sees exactly the facade calls
//!   (per-call counts, sizes, maxima — regardless of how many
//!   submissions the queue fans each call into), and deliberately does
//!   not forward [`StorageFile::submission`];
//! * a decorator **beneath** the queue sees the worker-side segmented
//!   accesses, whose byte totals must still add up to the payload.

use lio_pfs::{
    CountingFile, FaultPlan, FaultyFile, IoStats, MemFile, OsConfig, OsFile, QueueConfig,
    StorageFile, Throttle, ThrottledFile,
};
use std::sync::Arc;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn os_over_mem() -> OsFile {
    OsFile::over(
        MemFile::new(),
        OsConfig {
            queue: QueueConfig {
                workers: 2,
                depth: 16,
                shuffle_seed: None,
            },
            align: 512,
            max_seg: 1024, // several segments per facade call
        },
    )
}

#[test]
fn decorators_do_not_forward_the_queue() {
    // The conformance keystone: wrapping an async backend hides its
    // queue, funnelling consumers through the blocking facade where the
    // decorator's per-call accounting is well defined.
    let counting = CountingFile::new(os_over_mem());
    assert!(counting.inner().submission().is_some());
    assert!(counting.submission().is_none());
    let throttled = ThrottledFile::new(os_over_mem(), Throttle::sx6_local_fs());
    assert!(throttled.submission().is_none());
    let faulty = FaultyFile::new(os_over_mem(), FaultPlan::disabled());
    assert!(faulty.submission().is_none());
    // ... while an undecorated Arc forwards it.
    let arc: Arc<dyn StorageFile> = Arc::new(os_over_mem());
    assert!(arc.submission().is_some());
}

#[test]
fn counting_above_the_queue_counts_facade_calls() {
    let f = CountingFile::new(os_over_mem());
    // 5000-byte unaligned write → several submissions, ONE counted write.
    let data = pattern(5000, 1);
    f.write_at(3, &data).unwrap();
    f.write_at(6000, &data[..100]).unwrap();
    let mut buf = vec![0u8; 4000];
    f.read_at(1, &mut buf).unwrap();
    let s = f.stats();
    assert_eq!(s.writes, 2, "one count per facade write");
    assert_eq!(s.reads, 1, "one count per facade read");
    assert_eq!(s.bytes_written, 5100);
    assert_eq!(s.bytes_read, 4000);
    assert_eq!(s.max_write, 5000);
    assert_eq!(s.max_read, 4000);
}

#[test]
fn counting_above_the_queue_is_concurrency_safe() {
    let f = Arc::new(CountingFile::new(os_over_mem()));
    let threads = 8usize;
    let ops = 16usize;
    std::thread::scope(|s| {
        for t in 0..threads {
            let f = Arc::clone(&f);
            s.spawn(move || {
                for i in 0..ops {
                    let buf = vec![t as u8 + 1; 777];
                    f.write_at((t * ops + i) as u64 * 777, &buf).unwrap();
                }
            });
        }
    });
    let s = f.stats();
    assert_eq!(s.writes, (threads * ops) as u64);
    assert_eq!(s.bytes_written, (threads * ops * 777) as u64);
    assert_eq!(s.max_write, 777);
}

#[test]
fn counting_beneath_the_queue_totals_match_payload() {
    // The queue fans one facade call into several worker-side accesses;
    // the decorated device's byte totals must sum back to the payload.
    let inner = Arc::new(CountingFile::new(MemFile::new()));
    let f = OsFile::over_arc(
        Arc::clone(&inner) as Arc<dyn StorageFile>,
        OsConfig {
            queue: QueueConfig {
                workers: 2,
                depth: 16,
                shuffle_seed: None,
            },
            align: 512,
            max_seg: 1024,
        },
    );
    let data = pattern(10_000, 2);
    f.write_at(7, &data).unwrap(); // unaligned head/tail + aligned body
    let s = inner.stats();
    assert_eq!(
        s.bytes_written,
        data.len() as u64,
        "segments sum to payload"
    );
    assert!(s.writes > 1, "the transfer was genuinely segmented");
    assert!(s.max_write <= 1024, "no segment exceeds max_seg");
    inner.reset();
    let mut back = vec![0u8; data.len()];
    assert_eq!(f.read_at(7, &mut back).unwrap(), data.len());
    assert_eq!(back, data);
    let s = inner.stats();
    assert_eq!(s.bytes_read, data.len() as u64);
    assert!(s.reads > 1);
}

#[test]
fn throttled_above_the_queue_stays_correct() {
    // Fast profile so the test stays quick; correctness is the point.
    let f = ThrottledFile::new(
        os_over_mem(),
        Throttle {
            read_bw: 1.0e12,
            write_bw: 1.0e12,
            latency: std::time::Duration::from_nanos(100),
        },
    );
    let data = pattern(6000, 3);
    assert_eq!(f.write_at(13, &data).unwrap(), data.len());
    let mut back = vec![0u8; data.len()];
    assert_eq!(f.read_at(13, &mut back).unwrap(), data.len());
    assert_eq!(back, data);
    // the facade drained its completions, so spin bookkeeping is local
    let _ = lio_pfs::take_spin_ns();
}

#[test]
fn disabled_fault_plan_is_passthrough_above_the_queue() {
    let f = FaultyFile::new(os_over_mem(), FaultPlan::disabled());
    let data = pattern(3000, 4);
    assert_eq!(f.write_at(0, &data).unwrap(), data.len());
    let mut back = vec![0u8; data.len()];
    assert_eq!(f.read_at(0, &mut back).unwrap(), data.len());
    assert_eq!(back, data);
    assert_eq!(f.injected(), 0);
    f.sync().unwrap();
}

#[test]
fn stacked_decorators_and_stats_merge() {
    // Counting inside throttling, both above the queue: counts are per
    // facade call and merge arithmetic holds across two stacks.
    let a = ThrottledFile::new(
        CountingFile::new(os_over_mem()),
        Throttle {
            read_bw: 1.0e12,
            write_bw: 1.0e12,
            latency: std::time::Duration::ZERO,
        },
    );
    let b = CountingFile::new(os_over_mem());
    a.write_at(0, &[1u8; 300]).unwrap();
    a.write_at(300, &[2u8; 200]).unwrap();
    b.write_at(0, &[3u8; 1000]).unwrap();
    let mut rbuf = [0u8; 64];
    b.read_at(0, &mut rbuf).unwrap();
    let mut merged = a.inner().stats();
    merged.merge(&b.stats());
    assert_eq!(
        merged,
        IoStats {
            reads: 1,
            writes: 3,
            bytes_read: 64,
            bytes_written: 1500,
            max_read: 64,
            max_write: 1000,
        }
    );
}
