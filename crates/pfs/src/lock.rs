//! Byte-range locks.
//!
//! Data-sieving **writes** are read-modify-write cycles: a region of the
//! file is read into the file buffer, user data is merged into it, and the
//! buffer is written back. The paper (Section 2.2) notes that "the related
//! region of the file is locked to prevent non-related data from being
//! overwritten by now obsolete data in the gaps in the file buffer". This
//! module provides that lock: an advisory byte-range lock manager shared
//! by all processes accessing a file.

use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Default)]
struct LockState {
    /// Currently held exclusive ranges.
    held: Vec<Range<u64>>,
}

/// An advisory byte-range lock manager.
///
/// Ranges are exclusive; acquiring a range blocks while any overlapping
/// range is held. Guards release on drop.
#[derive(Clone, Default)]
pub struct RangeLock {
    inner: Arc<(Mutex<LockState>, Condvar)>,
}

/// RAII guard for a held range; releases on drop.
pub struct RangeGuard {
    lock: RangeLock,
    range: Range<u64>,
}

impl RangeLock {
    /// A new, unheld lock manager.
    pub fn new() -> RangeLock {
        RangeLock::default()
    }

    /// Acquire an exclusive lock on `range`, blocking until no overlapping
    /// range is held. Empty ranges succeed immediately and hold nothing.
    pub fn lock(&self, range: Range<u64>) -> RangeGuard {
        if range.start >= range.end {
            return RangeGuard {
                lock: self.clone(),
                range: 0..0,
            };
        }
        let (mutex, cond) = &*self.inner;
        let mut state = mutex.lock().unwrap();
        while state.held.iter().any(|h| overlap(h, &range)) {
            state = cond.wait(state).unwrap();
        }
        state.held.push(range.clone());
        RangeGuard {
            lock: self.clone(),
            range,
        }
    }

    /// Try to acquire `range` without blocking.
    pub fn try_lock(&self, range: Range<u64>) -> Option<RangeGuard> {
        if range.start >= range.end {
            return Some(RangeGuard {
                lock: self.clone(),
                range: 0..0,
            });
        }
        let (mutex, _) = &*self.inner;
        let mut state = mutex.lock().unwrap();
        if state.held.iter().any(|h| overlap(h, &range)) {
            return None;
        }
        state.held.push(range.clone());
        Some(RangeGuard {
            lock: self.clone(),
            range,
        })
    }

    /// Number of ranges currently held (diagnostics).
    pub fn held_count(&self) -> usize {
        self.inner.0.lock().unwrap().held.len()
    }
}

impl Drop for RangeGuard {
    fn drop(&mut self) {
        if self.range.start >= self.range.end {
            return;
        }
        let (mutex, cond) = &*self.lock.inner;
        let mut state = mutex.lock().unwrap();
        if let Some(i) = state
            .held
            .iter()
            .position(|h| h.start == self.range.start && h.end == self.range.end)
        {
            state.held.swap_remove(i);
        }
        cond.notify_all();
    }
}

fn overlap(a: &Range<u64>, b: &Range<u64>) -> bool {
    a.start < b.end && b.start < a.end
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn disjoint_ranges_coexist() {
        let l = RangeLock::new();
        let _a = l.lock(0..10);
        let _b = l.lock(10..20);
        assert_eq!(l.held_count(), 2);
    }

    #[test]
    fn overlap_blocks_try_lock() {
        let l = RangeLock::new();
        let _a = l.lock(0..10);
        assert!(l.try_lock(5..15).is_none());
        assert!(l.try_lock(10..15).is_some());
    }

    #[test]
    fn release_unblocks() {
        let l = RangeLock::new();
        let a = l.lock(0..10);
        assert!(l.try_lock(0..5).is_none());
        drop(a);
        assert!(l.try_lock(0..5).is_some());
    }

    #[test]
    fn empty_range_is_free() {
        let l = RangeLock::new();
        let _a = l.lock(5..5);
        assert_eq!(l.held_count(), 0);
        assert!(l.try_lock(0..100).is_some());
    }

    #[test]
    fn blocking_lock_waits_for_release() {
        let l = RangeLock::new();
        let guard = l.lock(0..100);
        let l2 = l.clone();
        let handle = std::thread::spawn(move || {
            let _g = l2.lock(50..60);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!handle.is_finished());
        drop(guard);
        handle.join().unwrap();
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        // Many threads lock the same range and increment a non-atomic
        // counter; the lock must serialize them.
        let l = RangeLock::new();
        let in_section = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _g = l.lock(10..20);
                        let now = in_section.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        in_section.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }
}
