//! Alignment-aware buffer management for the real-storage backend.
//!
//! Kernel I/O paths reward block-aligned transfers: page-cache copies are
//! cheapest when they start on page boundaries, and an eventual
//! `O_DIRECT`/io_uring backend *requires* sector alignment on both the
//! file offset and the user memory. This module supplies the two pieces
//! the submission path needs:
//!
//! * [`AlignedBuf`] — a heap buffer whose starting address is aligned,
//!   pooled by [`AlignedPool`] so unaligned-fragment staging does not
//!   allocate per call;
//! * [`split_for_alignment`] — the planner that chops one logical
//!   transfer into an (optional) unaligned head fragment, a run of
//!   aligned body segments capped at `max_seg` bytes, and an (optional)
//!   unaligned tail fragment. Aligned body segments can be submitted
//!   zero-copy straight from the user buffer; the fragments go through a
//!   staged [`AlignedBuf`].

/// Round `x` down to a multiple of `align` (a power of two).
pub fn align_down(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    x & !(align - 1)
}

/// Round `x` up to a multiple of `align` (a power of two).
pub fn align_up(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

/// One piece of a transfer planned by [`split_for_alignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Absolute file offset of this segment.
    pub off: u64,
    /// Offset of this segment's bytes inside the caller's buffer.
    pub buf_off: usize,
    /// Segment length in bytes.
    pub len: usize,
    /// Whether both `off` and `len` are alignment-multiples (eligible for
    /// zero-copy submission straight from the user buffer).
    pub aligned: bool,
}

/// Plan the transfer `[offset, offset + len)` as head fragment + aligned
/// body segments (each at most `max_seg` bytes, `max_seg` itself rounded
/// down to an alignment multiple) + tail fragment.
///
/// Invariants (checked by tests): segments are contiguous, in ascending
/// offset order, cover exactly `[offset, offset + len)`, and at most the
/// first and last are unaligned. A zero-length transfer yields no
/// segments; a transfer smaller than one alignment block yields a single
/// unaligned segment.
pub fn split_for_alignment(offset: u64, len: usize, align: usize, max_seg: usize) -> Vec<Segment> {
    debug_assert!(align.is_power_of_two() && align > 0);
    let max_seg = align_down(max_seg.max(align) as u64, align as u64) as usize;
    if len == 0 {
        return Vec::new();
    }
    let end = offset + len as u64;
    let body_lo = align_up(offset, align as u64);
    let body_hi = align_down(end, align as u64);
    let mut segs = Vec::new();
    if body_lo >= body_hi {
        // No aligned body at all: the whole transfer is one fragment.
        segs.push(Segment {
            off: offset,
            buf_off: 0,
            len,
            aligned: false,
        });
        return segs;
    }
    if offset < body_lo {
        segs.push(Segment {
            off: offset,
            buf_off: 0,
            len: (body_lo - offset) as usize,
            aligned: false,
        });
    }
    let mut at = body_lo;
    while at < body_hi {
        let take = ((body_hi - at) as usize).min(max_seg);
        segs.push(Segment {
            off: at,
            buf_off: (at - offset) as usize,
            len: take,
            aligned: true,
        });
        at += take as u64;
    }
    if body_hi < end {
        segs.push(Segment {
            off: body_hi,
            buf_off: (body_hi - offset) as usize,
            len: (end - body_hi) as usize,
            aligned: false,
        });
    }
    segs
}

/// A heap buffer whose starting address is aligned to a fixed power of
/// two. Used to stage unaligned head/tail fragments so the device only
/// ever sees alignment-friendly memory, and ready for an `O_DIRECT`
/// backend that would make the alignment mandatory.
pub struct AlignedBuf {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
    align: usize,
}

// The buffer is exclusively owned heap memory.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate a zeroed buffer of `len` bytes aligned to `align` (a
    /// power of two, at least 1; `len` must be non-zero).
    pub fn new(len: usize, align: usize) -> AlignedBuf {
        assert!(align.is_power_of_two());
        assert!(len > 0, "zero-length aligned buffers are not allocatable");
        let layout = std::alloc::Layout::from_size_align(len, align).expect("valid layout");
        // SAFETY: layout has non-zero size.
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let ptr = match std::ptr::NonNull::new(raw) {
            Some(p) => p,
            None => std::alloc::handle_alloc_error(layout),
        };
        AlignedBuf { ptr, len, align }
    }

    /// Buffer length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The alignment this buffer was allocated with.
    pub fn align(&self) -> usize {
        self.align
    }

    /// The contents as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr is valid for len bytes and exclusively owned.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The contents as a mutable byte slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: ptr is valid for len bytes and exclusively owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout =
            std::alloc::Layout::from_size_align(self.len, self.align).expect("valid layout");
        // SAFETY: allocated in `new` with this exact layout.
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), layout) };
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={}, align={})", self.len, self.align)
    }
}

/// A small free-list of [`AlignedBuf`]s of one alignment class, so the
/// per-call head/tail staging of a hot submission path reuses memory
/// instead of hitting the allocator.
pub struct AlignedPool {
    align: usize,
    free: std::sync::Mutex<Vec<AlignedBuf>>,
    /// Cap on pooled buffers; excess returns fall through to dealloc.
    max_pooled: usize,
}

impl AlignedPool {
    /// A pool handing out buffers aligned to `align`.
    pub fn new(align: usize) -> AlignedPool {
        AlignedPool {
            align,
            free: std::sync::Mutex::new(Vec::new()),
            max_pooled: 16,
        }
    }

    /// Get a buffer with at least `len` bytes (its `len()` may be
    /// larger). Prefers a pooled buffer; allocates one whole alignment
    /// block minimum otherwise.
    pub fn get(&self, len: usize) -> AlignedBuf {
        let want = align_up(len.max(1) as u64, self.align as u64) as usize;
        let mut free = self.free.lock().unwrap();
        if let Some(i) = free.iter().position(|b| b.len() >= want) {
            return free.swap_remove(i);
        }
        drop(free);
        AlignedBuf::new(want, self.align)
    }

    /// Return a buffer to the pool.
    pub fn put(&self, buf: AlignedBuf) {
        if buf.align() != self.align {
            return; // someone else's buffer; just drop it
        }
        let mut free = self.free.lock().unwrap();
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }

    /// Number of buffers currently pooled (test/diagnostic helper).
    pub fn pooled(&self) -> usize {
        self.free.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(segs: &[Segment], offset: u64, len: usize) {
        let mut at = offset;
        let mut buf_at = 0usize;
        for s in segs {
            assert_eq!(s.off, at, "segments must be contiguous");
            assert_eq!(s.buf_off, buf_at, "buffer offsets must track file offsets");
            assert!(s.len > 0, "no empty segments");
            at += s.len as u64;
            buf_at += s.len;
        }
        assert_eq!(at, offset + len as u64, "segments must cover the transfer");
        assert_eq!(buf_at, len);
    }

    #[test]
    fn split_aligned_transfer_is_all_aligned() {
        let segs = split_for_alignment(8192, 16384, 4096, 1 << 20);
        check_cover(&segs, 8192, 16384);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].aligned);
    }

    #[test]
    fn split_unaligned_head_and_tail() {
        let segs = split_for_alignment(100, 9000, 4096, 1 << 20);
        check_cover(&segs, 100, 9000);
        assert_eq!(segs.len(), 3);
        assert!(!segs[0].aligned);
        assert_eq!(segs[0].len, 4096 - 100);
        assert!(segs[1].aligned);
        assert_eq!(segs[1].off % 4096, 0);
        assert!(!segs[2].aligned);
        assert_eq!(segs[2].off, 8192);
    }

    #[test]
    fn split_small_transfer_is_one_fragment() {
        let segs = split_for_alignment(5, 10, 4096, 1 << 20);
        check_cover(&segs, 5, 10);
        assert_eq!(segs.len(), 1);
        assert!(!segs[0].aligned);
        // even a block-sized transfer that straddles a boundary
        let segs = split_for_alignment(2048, 4096, 4096, 1 << 20);
        check_cover(&segs, 2048, 4096);
        assert!(segs.iter().all(|s| !s.aligned));
    }

    #[test]
    fn split_zero_length_is_empty() {
        assert!(split_for_alignment(123, 0, 4096, 1 << 20).is_empty());
    }

    #[test]
    fn split_body_respects_max_seg() {
        let segs = split_for_alignment(0, 10 << 20, 4096, 1 << 20);
        check_cover(&segs, 0, 10 << 20);
        assert_eq!(segs.len(), 10);
        assert!(segs.iter().all(|s| s.aligned && s.len <= 1 << 20));
        // a max_seg below the alignment is rounded up to one block
        let segs = split_for_alignment(0, 8192, 4096, 100);
        check_cover(&segs, 0, 8192);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn aligned_buf_is_aligned_and_zeroed() {
        for align in [16usize, 512, 4096] {
            let b = AlignedBuf::new(1000, align);
            assert_eq!(b.as_slice().as_ptr() as usize % align, 0);
            assert!(b.as_slice().iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn aligned_buf_read_write() {
        let mut b = AlignedBuf::new(64, 64);
        b.as_mut_slice()[..5].copy_from_slice(b"hello");
        assert_eq!(&b.as_slice()[..5], b"hello");
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn pool_reuses_buffers() {
        let pool = AlignedPool::new(4096);
        let b = pool.get(100);
        assert_eq!(b.len(), 4096); // rounded to one block
        let p0 = b.as_slice().as_ptr();
        pool.put(b);
        assert_eq!(pool.pooled(), 1);
        let b2 = pool.get(50);
        assert_eq!(
            b2.as_slice().as_ptr(),
            p0,
            "pool must hand back the pooled buffer"
        );
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_allocates_when_too_small() {
        let pool = AlignedPool::new(4096);
        pool.put(AlignedBuf::new(4096, 4096));
        let big = pool.get(8192);
        assert!(big.len() >= 8192);
        assert_eq!(pool.pooled(), 1, "undersized pooled buffer stays pooled");
    }
}
