//! Bounded retry and short-I/O resumption over [`StorageFile`].
//!
//! Real parallel file systems return short reads/writes and transient
//! errors under load; ROMIO-class implementations bury the recovery
//! loops inside the transport. Here the loop is explicit, bounded, and
//! observable: `pfs.retries` counts backoff retries and
//! `pfs.short_io_resumed` counts resumed short transfers, so the
//! collective layer's recovery work shows up in metrics snapshots
//! instead of hiding in latency.
//!
//! Transient errors (`WouldBlock`/`Interrupted`/`TimedOut`) are retried
//! with exponential backoff up to [`RetryPolicy::max_attempts`]; when the
//! budget runs out the last error is wrapped in [`RetryExhausted`] and
//! surfaced as a *permanent* `io::Error`, so callers never loop forever.
//! All other errors propagate immediately.

use std::error::Error;
use std::fmt;
use std::io;
use std::time::{Duration, Instant};

use lio_obs::LazyCounter;

use crate::file::StorageFile;

static OBS_RETRIES: LazyCounter = LazyCounter::new("pfs.retries");
static OBS_SHORT_RESUMED: LazyCounter = LazyCounter::new("pfs.short_io_resumed");

/// Whether `e` is transient: the same call may succeed if repeated.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted | io::ErrorKind::TimedOut
    )
}

/// The retry budget ran out; wraps the last transient error observed.
///
/// Carried inside an `io::Error` of kind `Other`, so downstream retry
/// loops treat it as permanent. Recover it with
/// `err.get_ref().and_then(|e| e.downcast_ref::<RetryExhausted>())`.
#[derive(Debug)]
pub struct RetryExhausted {
    /// Which operation gave up ("read", "write", or "sync").
    pub op: &'static str,
    /// Attempts made, including the first.
    pub attempts: u32,
    /// The last transient error observed.
    pub last: io::Error,
}

impl fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "storage {} still failing after {} attempts: {}",
            self.op, self.attempts, self.last
        )
    }
}

impl Error for RetryExhausted {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.last)
    }
}

fn exhausted(op: &'static str, attempts: u32, last: io::Error) -> io::Error {
    io::Error::other(RetryExhausted { op, attempts, last })
}

/// Bounded exponential backoff for transient storage faults.
///
/// The defaults are tuned for the in-memory/emulated backends: backoffs
/// are microsecond-scale (well under OS sleep granularity, so short
/// waits yield rather than sleep), and the 24-attempt budget is far
/// above any survivable [`crate::FaultPlan`]'s consecutive-transient cap
/// while still bounding a genuinely stuck device to sub-millisecond
/// latency before the typed failure surfaces.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts per storage position, including the first.
    pub max_attempts: u32,
    /// First backoff; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 24,
            base_backoff: Duration::from_micros(2),
            max_backoff: Duration::from_micros(500),
        }
    }
}

/// Wait out one backoff. Microsecond-scale waits are far below OS sleep
/// granularity, so yield-spin them; only millisecond-class waits sleep.
fn backoff_wait(d: Duration) {
    if d >= Duration::from_millis(2) {
        std::thread::sleep(d);
        return;
    }
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::thread::yield_now();
    }
}

impl RetryPolicy {
    fn backoff(&self, retry: u32) -> Duration {
        self.base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff)
    }

    /// Read `buf.len()` bytes at `offset`, resuming short reads and
    /// retrying transient errors. The result is short only at
    /// end-of-file — POSIX `pread` semantics, preserved so the sieving
    /// layer's zero-fill-past-EOF path keeps working.
    pub fn read_full_at(
        &self,
        f: &dyn StorageFile,
        offset: u64,
        buf: &mut [u8],
    ) -> io::Result<usize> {
        let mut done = 0usize;
        let mut attempt = 1u32;
        while done < buf.len() {
            match f.read_at(offset + done as u64, &mut buf[done..]) {
                Ok(0) => break, // end of file
                Ok(n) => {
                    if done > 0 {
                        OBS_SHORT_RESUMED.incr();
                    }
                    done += n;
                    attempt = 1;
                }
                Err(e) if is_transient(&e) => {
                    OBS_RETRIES.incr();
                    if attempt >= self.max_attempts {
                        return Err(exhausted("read", attempt, e));
                    }
                    let bo = self.backoff(attempt);
                    lio_obs::trace::mark("pfs.retry", attempt as u64, bo.as_nanos() as u64);
                    backoff_wait(bo);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(done)
    }

    /// Write all of `buf` at `offset`, resuming short writes and
    /// retrying transient errors.
    pub fn write_full_at(&self, f: &dyn StorageFile, offset: u64, buf: &[u8]) -> io::Result<()> {
        let mut done = 0usize;
        let mut attempt = 1u32;
        while done < buf.len() {
            match f.write_at(offset + done as u64, &buf[done..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "storage accepted no bytes",
                    ));
                }
                Ok(n) => {
                    if done > 0 {
                        OBS_SHORT_RESUMED.incr();
                    }
                    done += n;
                    attempt = 1;
                }
                Err(e) if is_transient(&e) => {
                    OBS_RETRIES.incr();
                    if attempt >= self.max_attempts {
                        return Err(exhausted("write", attempt, e));
                    }
                    let bo = self.backoff(attempt);
                    lio_obs::trace::mark("pfs.retry", attempt as u64, bo.as_nanos() as u64);
                    backoff_wait(bo);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Flush, retrying transient failures.
    pub fn sync(&self, f: &dyn StorageFile) -> io::Result<()> {
        let mut attempt = 1u32;
        loop {
            match f.sync() {
                Ok(()) => return Ok(()),
                Err(e) if is_transient(&e) => {
                    OBS_RETRIES.incr();
                    if attempt >= self.max_attempts {
                        return Err(exhausted("sync", attempt, e));
                    }
                    let bo = self.backoff(attempt);
                    lio_obs::trace::mark("pfs.retry", attempt as u64, bo.as_nanos() as u64);
                    backoff_wait(bo);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// [`RetryPolicy::read_full_at`] under the default policy.
pub fn read_full_at(f: &dyn StorageFile, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
    RetryPolicy::default().read_full_at(f, offset, buf)
}

/// [`RetryPolicy::write_full_at`] under the default policy.
pub fn write_full_at(f: &dyn StorageFile, offset: u64, buf: &[u8]) -> io::Result<()> {
    RetryPolicy::default().write_full_at(f, offset, buf)
}

/// [`RetryPolicy::sync`] under the default policy.
pub fn sync_with_retry(f: &dyn StorageFile) -> io::Result<()> {
    RetryPolicy::default().sync(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decorate::{FaultPlan, FaultyFile};
    use crate::file::MemFile;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn resumes_short_reads_to_completion() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let plan = FaultPlan {
            short_per_256: 255,
            transient_per_256: 0,
            ..FaultPlan::seeded(21)
        };
        let f = FaultyFile::new(MemFile::with_data(data.clone()), plan);
        let mut buf = vec![0u8; 4096];
        assert_eq!(read_full_at(&f, 0, &mut buf).unwrap(), 4096);
        assert_eq!(buf, data);
    }

    #[test]
    fn resumes_short_writes_and_retries_transients() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let f = FaultyFile::new(MemFile::new(), FaultPlan::seeded(22));
        write_full_at(&f, 0, &data).unwrap();
        assert_eq!(f.inner().snapshot(), data);
        let mut buf = vec![0u8; 4096];
        assert_eq!(read_full_at(&f, 0, &mut buf).unwrap(), 4096);
        assert_eq!(buf, data);
    }

    #[test]
    fn read_past_eof_stays_short() {
        let f = MemFile::with_data(vec![5u8; 10]);
        let mut buf = [0u8; 20];
        assert_eq!(read_full_at(&f, 0, &mut buf).unwrap(), 10);
        assert_eq!(&buf[..10], &[5u8; 10]);
    }

    #[test]
    fn permanent_errors_propagate_immediately() {
        let plan = FaultPlan {
            seed: 9,
            short_per_256: 0,
            transient_per_256: 0,
            max_consecutive_transient: 0,
            torn_after: Some(0),
            flush_fail_first: 0,
        };
        let f = FaultyFile::new(MemFile::new(), plan);
        let e = write_full_at(&f, 0, &[1u8; 16]).unwrap_err();
        assert!(!is_transient(&e));
        assert!(
            e.get_ref()
                .and_then(|s| s.downcast_ref::<RetryExhausted>())
                .is_none(),
            "a permanent fault must not be reported as retry exhaustion"
        );
    }

    /// A file whose every access fails transiently — forever.
    struct AlwaysBlocked(AtomicU32);

    impl StorageFile for AlwaysBlocked {
        fn read_at(&self, _o: u64, _b: &mut [u8]) -> io::Result<usize> {
            self.0.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
        }
        fn write_at(&self, _o: u64, _b: &[u8]) -> io::Result<usize> {
            self.0.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
        }
        fn len(&self) -> u64 {
            0
        }
        fn set_len(&self, _len: u64) -> io::Result<()> {
            Ok(())
        }
        fn sync(&self) -> io::Result<()> {
            self.0.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::TimedOut, "stuck"))
        }
    }

    #[test]
    fn exhaustion_surfaces_typed_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_nanos(1),
            max_backoff: Duration::from_nanos(10),
        };
        let f = AlwaysBlocked(AtomicU32::new(0));
        let e = policy.write_full_at(&f, 0, &[0u8; 8]).unwrap_err();
        assert_eq!(
            f.0.load(Ordering::Relaxed),
            5,
            "budget must bound the attempts"
        );
        let inner = e
            .get_ref()
            .and_then(|s| s.downcast_ref::<RetryExhausted>())
            .expect("exhaustion must carry RetryExhausted");
        assert_eq!(inner.op, "write");
        assert_eq!(inner.attempts, 5);
        assert!(!is_transient(&e), "exhaustion must be permanent");

        f.0.store(0, Ordering::Relaxed);
        let e = policy.sync(&f).unwrap_err();
        assert!(e.to_string().contains("sync"));
    }
}
