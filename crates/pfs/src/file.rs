//! The storage-file abstraction and its in-memory and on-disk backends.

use std::io;
use std::sync::{Arc, RwLock};

/// A byte-addressable storage file supporting positional I/O — the
/// substrate beneath the MPI-IO layer, standing in for the SX local file
/// system of the paper's testbed.
///
/// Semantics follow POSIX `pread`/`pwrite`:
/// * `read_at` returns the number of bytes read, which is short only when
///   the read extends past end-of-file;
/// * `write_at` extends the file as needed and returns the bytes written;
/// * both may be called concurrently from many threads (interior
///   synchronization is the implementation's responsibility).
pub trait StorageFile: Send + Sync {
    /// Read into `buf` starting at byte `offset`; returns bytes read.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Write `buf` starting at byte `offset`, extending the file if
    /// needed; returns bytes written.
    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize>;

    /// Current file length in bytes.
    fn len(&self) -> u64;

    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Truncate or extend (zero-filled) the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;

    /// Flush any caches to stable storage.
    fn sync(&self) -> io::Result<()>;

    /// The asynchronous submission queue behind this file, if it has
    /// one. Consumers that understand the queue (the pipelined
    /// collective engine's storage lanes) submit whole batches and
    /// harvest completions out of order instead of going through the
    /// blocking positional methods. Decorators deliberately do *not*
    /// forward this: their accounting assumes the synchronous facade
    /// (see [`crate::decorate`]).
    fn submission(&self) -> Option<&crate::squeue::SubmissionQueue> {
        None
    }
}

impl<F: StorageFile + ?Sized> StorageFile for Arc<F> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        (**self).write_at(offset, buf)
    }
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        (**self).set_len(len)
    }
    fn sync(&self) -> io::Result<()> {
        (**self).sync()
    }
    fn submission(&self) -> Option<&crate::squeue::SubmissionQueue> {
        (**self).submission()
    }
}

/// A growable, thread-safe in-memory file.
///
/// `MemFile` plays the role of a *fast* parallel file system: its transfer
/// rate is the machine's memcpy bandwidth, which is exactly the regime the
/// paper identifies as the one where listless I/O matters most ("the
/// higher the bandwidth of the used file system in relation to the
/// bandwidth of the memory system..., the more important listless I/O
/// is"). Use [`crate::ThrottledFile`] to emulate slower storage.
#[derive(Default)]
pub struct MemFile {
    data: RwLock<Vec<u8>>,
}

impl MemFile {
    /// An empty in-memory file.
    pub fn new() -> MemFile {
        MemFile::default()
    }

    /// An in-memory file prefilled with `data`.
    pub fn with_data(data: Vec<u8>) -> MemFile {
        MemFile {
            data: RwLock::new(data),
        }
    }

    /// An empty file with reserved capacity (avoids reallocation noise in
    /// benchmarks).
    pub fn with_capacity(cap: usize) -> MemFile {
        MemFile {
            data: RwLock::new(Vec::with_capacity(cap)),
        }
    }

    /// Snapshot the entire contents (test helper).
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.read().unwrap().clone()
    }
}

impl StorageFile for MemFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let data = self.data.read().unwrap();
        let len = data.len() as u64;
        if offset >= len {
            return Ok(0);
        }
        let n = buf.len().min((len - offset) as usize);
        buf[..n].copy_from_slice(&data[offset as usize..offset as usize + n]);
        Ok(n)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let end = offset as usize + buf.len();
        let mut data = self.data.write().unwrap();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(buf);
        Ok(buf.len())
    }

    fn len(&self) -> u64 {
        self.data.read().unwrap().len() as u64
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.data.write().unwrap().resize(len as usize, 0);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

/// A [`StorageFile`] backed by a real file on disk, for examples and
/// integration tests that want durable output.
pub struct UnixFile {
    file: std::fs::File,
}

impl UnixFile {
    /// Create (or truncate) a file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> io::Result<UnixFile> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(UnixFile { file })
    }

    /// Open an existing file at `path` for read/write.
    pub fn open(path: impl AsRef<std::path::Path>) -> io::Result<UnixFile> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        Ok(UnixFile { file })
    }
}

impl StorageFile for UnixFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        // loop over partial reads so callers see POSIX-short reads only at EOF
        let mut total = 0;
        while total < buf.len() {
            match self.file.read_at(&mut buf[total..], offset + total as u64) {
                Ok(0) => break,
                Ok(n) => total += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, offset)?;
        Ok(buf.len())
    }

    fn len(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfile_read_write() {
        let f = MemFile::new();
        assert_eq!(f.write_at(0, b"hello").unwrap(), 5);
        let mut buf = [0u8; 5];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn memfile_sparse_write_zero_fills() {
        let f = MemFile::new();
        f.write_at(10, b"xy").unwrap();
        assert_eq!(f.len(), 12);
        let mut buf = [9u8; 12];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 12);
        assert_eq!(&buf[..10], &[0u8; 10]);
        assert_eq!(&buf[10..], b"xy");
    }

    #[test]
    fn memfile_short_read_at_eof() {
        let f = MemFile::with_data(vec![1, 2, 3]);
        let mut buf = [0u8; 8];
        assert_eq!(f.read_at(1, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], &[2, 3]);
        assert_eq!(f.read_at(3, &mut buf).unwrap(), 0);
        assert_eq!(f.read_at(100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn memfile_set_len() {
        let f = MemFile::with_data(vec![7; 8]);
        f.set_len(4).unwrap();
        assert_eq!(f.len(), 4);
        f.set_len(6).unwrap();
        let mut buf = [0u8; 6];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, &[7, 7, 7, 7, 0, 0]);
    }

    #[test]
    fn memfile_concurrent_disjoint_writes() {
        let f = Arc::new(MemFile::new());
        f.set_len(8 * 64).unwrap();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let f = Arc::clone(&f);
                s.spawn(move || {
                    let buf = vec![t as u8 + 1; 64];
                    f.write_at(t as u64 * 64, &buf).unwrap();
                });
            }
        });
        let snap = f.snapshot();
        for t in 0..8usize {
            assert!(snap[t * 64..(t + 1) * 64].iter().all(|&b| b == t as u8 + 1));
        }
    }

    #[test]
    fn unixfile_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lio-pfs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unixfile_roundtrip.bin");
        let f = UnixFile::create(&path).unwrap();
        f.write_at(3, b"abc").unwrap();
        assert_eq!(f.len(), 6);
        let mut buf = [0u8; 6];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"\0\0\0abc");
        drop(f);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn arc_passthrough() {
        let f: Arc<dyn StorageFile> = Arc::new(MemFile::new());
        f.write_at(0, b"zz").unwrap();
        assert_eq!(f.len(), 2);
    }
}
