//! Storage-file decorators: throttling, statistics, and fault injection.
//!
//! Decorators present a **synchronous facade**: each counts, throttles,
//! or perturbs exactly the call that passes through it, attributing the
//! effect to the calling thread. They therefore do not forward
//! [`StorageFile::submission`] — wrapping an asynchronous backend (e.g.
//! [`crate::OsFile`]) hides its queue, so every access is funnelled
//! through the blocking positional path where the decorator's accounting
//! is well defined. A decorator *beneath* the queue (as the device the
//! workers call) decorates the worker-side accesses instead, which is
//! how the fault plans reach the worker threadpool's retry path. The
//! async-completion conformance tests pin both arrangements.

use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lio_obs::{LazyCounter, LazyGauge, LazyHistogram};

use crate::file::StorageFile;

/// Storage-layer metrics, fed by [`CountingFile`] (and the other
/// decorators) into the global `lio-obs` registry. The request-size
/// histograms are what make the paper's access-granularity arguments
/// visible: data sieving should shift mass from tiny buckets to
/// buffer-sized ones.
static OBS_READ_CALLS: LazyCounter = LazyCounter::new("pfs.read.calls");
static OBS_READ_BYTES: LazyCounter = LazyCounter::new("pfs.read.bytes");
static OBS_WRITE_CALLS: LazyCounter = LazyCounter::new("pfs.write.calls");
static OBS_WRITE_BYTES: LazyCounter = LazyCounter::new("pfs.write.bytes");
static OBS_READ_SIZE: LazyHistogram = LazyHistogram::new("pfs.read.size");
static OBS_WRITE_SIZE: LazyHistogram = LazyHistogram::new("pfs.write.size");
static OBS_THROTTLE_NS: LazyCounter = LazyCounter::new("pfs.throttle.delay_ns");
/// Wall time burnt in the busy-wait tail of [`throttle_delay`]. This is
/// CPU time, not modelled device time: consumers that account "storage
/// time" from wall clocks (the pipelined engine's lane accounting)
/// subtract it so overlap numbers aren't inflated by the spin.
static OBS_SPIN_NS: LazyCounter = LazyCounter::new("pfs.throttle.spin_ns");
static OBS_FAULTS_INJECTED: LazyCounter = LazyCounter::new("pfs.faults.injected");
/// High-water mark of concurrently in-flight throttled storage ops,
/// process-wide. > 1 proves the pipelined collective engine genuinely
/// overlapped storage accesses (reads against writes, or storage
/// against exchange on another rank).
static OBS_OPS_INFLIGHT_MAX: LazyGauge = LazyGauge::new("pfs.ops.inflight_max");

/// Current in-flight throttled ops across all [`ThrottledFile`]s.
static THROTTLE_INFLIGHT: AtomicU64 = AtomicU64::new(0);

/// A bandwidth/latency model emulating a particular storage system.
///
/// The paper's SX-6 testbed sustains ~6.5 GB/s writes and ~8 GB/s reads
/// ([`Throttle::sx6_local_fs`]). Each access costs `latency` plus
/// `bytes / bandwidth`. Short delays are realized with a calibrated
/// spin-wait so that sub-microsecond costs are representable (OS sleep
/// granularity is far too coarse at these rates); long delays sleep for
/// the bulk and spin only the tail, so a modelled slow device genuinely
/// yields the CPU — required for the pipelined collective engine's
/// storage/exchange overlap to be real rather than an artifact of
/// busy-waiting threads contending for cores.
#[derive(Debug, Clone, Copy)]
pub struct Throttle {
    /// Sustained read bandwidth in bytes/second.
    pub read_bw: f64,
    /// Sustained write bandwidth in bytes/second.
    pub write_bw: f64,
    /// Fixed per-access latency.
    pub latency: Duration,
}

impl Throttle {
    /// The local file system of the paper's SX-6/SX-7 nodes: 6.5 GB/s
    /// write, 8 GB/s read, negligible access latency.
    pub fn sx6_local_fs() -> Throttle {
        Throttle {
            read_bw: 8.0e9,
            write_bw: 6.5e9,
            latency: Duration::from_micros(10),
        }
    }

    /// A commodity NFS-class file system: ~100 MB/s with high per-access
    /// latency — the regime where file access time hides CPU overheads
    /// (useful as the ablation contrast).
    pub fn commodity_nfs() -> Throttle {
        Throttle {
            read_bw: 1.0e8,
            write_bw: 1.0e8,
            latency: Duration::from_micros(500),
        }
    }

    fn delay_for(&self, bytes: usize, write: bool) -> Duration {
        let bw = if write { self.write_bw } else { self.read_bw };
        self.latency + Duration::from_secs_f64(bytes as f64 / bw)
    }
}

/// Wraps a [`StorageFile`] to emulate a given bandwidth/latency profile.
pub struct ThrottledFile<F> {
    inner: F,
    throttle: Throttle,
}

impl<F: StorageFile> ThrottledFile<F> {
    /// Throttle `inner` to the given profile.
    pub fn new(inner: F, throttle: Throttle) -> ThrottledFile<F> {
        ThrottledFile { inner, throttle }
    }

    /// The wrapped file.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

/// Spin-only tail of a hybrid delay: delays at most this long (and the
/// final stretch of longer ones) busy-wait for precision; everything
/// above sleeps first so the waiting thread yields its core.
const SPIN_TAIL: Duration = Duration::from_micros(100);

// Per-thread accumulator of spin-tail nanoseconds, so a caller timing a
// storage op with a wall clock can subtract the CPU busy-wait share of
// the throttle from "device time" (see `take_spin_ns`).
thread_local! {
    static SPIN_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Drain the calling thread's accumulated throttle spin-tail time (ns).
/// The pipelined collective engine calls this around each storage lane
/// op: the spin is CPU burn, not modelled device time, and must not be
/// credited to `core.coll.*.io_ns` / `overlap_ns`.
pub fn take_spin_ns() -> u64 {
    SPIN_NS.with(|c| c.replace(0))
}

fn throttle_delay(d: Duration) -> Duration {
    let start = Instant::now();
    if d > SPIN_TAIL {
        std::thread::sleep(d - SPIN_TAIL);
    }
    // Clamp the busy-wait to SPIN_TAIL past the sleep: under heavy
    // oversubscription the sleep overshoots, and an unbounded spin on
    // `start.elapsed()` would then burn a core well past the deadline.
    let spin_start = Instant::now();
    let spin_deadline = spin_start + SPIN_TAIL;
    while start.elapsed() < d && Instant::now() < spin_deadline {
        std::hint::spin_loop();
    }
    let spun = spin_start.elapsed();
    let ns = spun.as_nanos() as u64;
    SPIN_NS.with(|c| c.set(c.get().saturating_add(ns)));
    OBS_SPIN_NS.add(ns);
    spun
}

/// RAII guard maintaining the in-flight-ops high-water mark.
struct InflightOp;

impl InflightOp {
    fn enter() -> InflightOp {
        let cur = THROTTLE_INFLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
        OBS_OPS_INFLIGHT_MAX.record_max(cur);
        InflightOp
    }
}

impl Drop for InflightOp {
    fn drop(&mut self) {
        THROTTLE_INFLIGHT.fetch_sub(1, Ordering::Relaxed);
    }
}

impl<F: StorageFile> StorageFile for ThrottledFile<F> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let _op = InflightOp::enter();
        let mut sp = lio_obs::trace::span("pfs.read");
        let n = self.inner.read_at(offset, buf)?;
        let d = self.throttle.delay_for(n, false);
        OBS_THROTTLE_NS.add(d.as_nanos() as u64);
        let spun = throttle_delay(d);
        // the span's wall time includes the spin tail; the payload keeps
        // modelled device time and CPU spin separable downstream
        sp.set_payload(n as u64, d.as_nanos() as u64, spun.as_nanos() as u64);
        Ok(n)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        let _op = InflightOp::enter();
        let mut sp = lio_obs::trace::span("pfs.write");
        let n = self.inner.write_at(offset, buf)?;
        let d = self.throttle.delay_for(n, true);
        OBS_THROTTLE_NS.add(d.as_nanos() as u64);
        let spun = throttle_delay(d);
        sp.set_payload(n as u64, d.as_nanos() as u64, spun.as_nanos() as u64);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

/// Access statistics collected by [`CountingFile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of read calls.
    pub reads: u64,
    /// Number of write calls.
    pub writes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Largest single read request, in bytes.
    pub max_read: u64,
    /// Largest single write request, in bytes.
    pub max_write: u64,
}

impl IoStats {
    /// Fold `other` into `self`: totals add, maxima take the larger value.
    /// Useful for aggregating per-rank or per-file stats.
    pub fn merge(&mut self, other: &IoStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.max_read = self.max_read.max(other.max_read);
        self.max_write = self.max_write.max(other.max_write);
    }
}

/// Wraps a [`StorageFile`] and counts accesses and bytes — used by the
/// overhead ablation benches to show, e.g., how data sieving trades access
/// count against transferred volume.
pub struct CountingFile<F> {
    inner: F,
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    max_read: AtomicU64,
    max_write: AtomicU64,
}

impl<F: StorageFile> CountingFile<F> {
    /// Wrap `inner` with fresh counters.
    pub fn new(inner: F) -> CountingFile<F> {
        CountingFile {
            inner,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            max_read: AtomicU64::new(0),
            max_write: AtomicU64::new(0),
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            max_read: self.max_read.load(Ordering::Relaxed),
            max_write: self.max_write.load(Ordering::Relaxed),
        }
    }

    /// Reset the counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.max_read.store(0, Ordering::Relaxed);
        self.max_write.store(0, Ordering::Relaxed);
    }

    /// The wrapped file.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: StorageFile> StorageFile for CountingFile<F> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read_at(offset, buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
        self.max_read.fetch_max(buf.len() as u64, Ordering::Relaxed);
        OBS_READ_CALLS.incr();
        OBS_READ_BYTES.add(n as u64);
        OBS_READ_SIZE.record(buf.len() as u64);
        lio_obs::profile::record_pfs(false, buf.len() as u64);
        Ok(n)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write_at(offset, buf)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
        self.max_write
            .fetch_max(buf.len() as u64, Ordering::Relaxed);
        OBS_WRITE_CALLS.incr();
        OBS_WRITE_BYTES.add(n as u64);
        OBS_WRITE_SIZE.record(buf.len() as u64);
        lio_obs::profile::record_pfs(true, buf.len() as u64);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

/// Deterministic fault-injection plan for [`FaultyFile`], driven by a
/// seeded xorshift64* stream — the same generator family as the
/// differential test corpora, so any failing schedule is replayed by its
/// seed alone.
///
/// Plans without `torn_after` are *survivable by construction*: short
/// transfers always move at least one byte, transient errors stop after
/// `max_consecutive_transient` in a row, and flush failures stop after
/// `flush_fail_first` calls — so a bounded retry/resume loop (see
/// [`crate::retry`]) always completes. `torn_after` is the deliberate
/// exception: it models a crash mid-write and is permanent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the injection decision stream.
    pub seed: u64,
    /// Probability (out of 256) that a read or write is truncated to a
    /// random non-empty prefix.
    pub short_per_256: u8,
    /// Probability (out of 256) that a read or write fails with a
    /// transient error (`WouldBlock`/`Interrupted`/`TimedOut` class).
    pub transient_per_256: u8,
    /// Hard cap on consecutively injected transient errors across the
    /// whole file. Must stay below the retry budget of
    /// [`crate::retry::RetryPolicy`] for faults to be survivable.
    pub max_consecutive_transient: u32,
    /// Fail-stop after this many payload bytes have been submitted for
    /// writing: the crossing write persists only the prefix up to the
    /// limit, then it and every later write fail permanently (a torn
    /// write followed by device loss).
    pub torn_after: Option<u64>,
    /// The first k `sync()` calls fail with a transient error.
    pub flush_fail_first: u32,
}

impl FaultPlan {
    /// No faults at all; [`FaultyFile`] degenerates to a passthrough.
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            seed: 0,
            short_per_256: 0,
            transient_per_256: 0,
            max_consecutive_transient: 0,
            torn_after: None,
            flush_fail_first: 0,
        }
    }

    /// Moderate survivable defaults: roughly one access in five is
    /// shortened, one in eight fails transiently (at most three in a
    /// row), and the first two flushes fail.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            short_per_256: 48,
            transient_per_256: 32,
            max_consecutive_transient: 3,
            torn_after: None,
            flush_fail_first: 2,
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.short_per_256 > 0
            || self.transient_per_256 > 0
            || self.torn_after.is_some()
            || self.flush_fail_first > 0
    }
}

/// Wraps a [`StorageFile`] and injects faults per a seeded [`FaultPlan`],
/// for exercising the I/O layers' retry/backoff and short-I/O resumption.
/// Composes with [`ThrottledFile`]/[`CountingFile`] like any decorator;
/// wrap an `Arc<MemFile>` to keep an injection-free handle for snapshots.
///
/// An inactive plan takes a single-branch fast path, so a `FaultyFile`
/// left in place costs nothing measurable (gated by the `fault_overhead`
/// bench, same style as `obs_overhead`).
pub struct FaultyFile<F> {
    inner: F,
    plan: FaultPlan,
    active: bool,
    rng: Mutex<u64>,
    consec_transient: AtomicU32,
    bytes_written: AtomicU64,
    syncs: AtomicU32,
    injected: AtomicU64,
}

impl<F: StorageFile> FaultyFile<F> {
    /// Wrap `inner` under the given fault plan.
    pub fn new(inner: F, plan: FaultPlan) -> FaultyFile<F> {
        FaultyFile {
            inner,
            active: plan.is_active(),
            rng: Mutex::new(plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            plan,
            consec_transient: AtomicU32::new(0),
            bytes_written: AtomicU64::new(0),
            syncs: AtomicU32::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The wrapped file (bypasses injection — tests snapshot through it).
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The plan this file injects under.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// One xorshift64* step of the shared decision stream.
    fn roll(&self) -> u64 {
        let mut g = self.rng.lock().expect("fault rng poisoned");
        let mut x = *g;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *g = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn record_injection(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        OBS_FAULTS_INJECTED.incr();
    }

    /// Claim a transient-error slot unless the consecutive cap is hit.
    fn claim_transient(&self) -> bool {
        let max = self.plan.max_consecutive_transient;
        self.consec_transient
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                (c < max).then_some(c + 1)
            })
            .is_ok()
    }

    fn transient_error(&self, r: u64, op: &str) -> io::Error {
        let kind = match (r >> 8) % 3 {
            0 => io::ErrorKind::WouldBlock,
            1 => io::ErrorKind::Interrupted,
            _ => io::ErrorKind::TimedOut,
        };
        io::Error::new(kind, format!("injected transient {op} fault"))
    }

    /// Decide the fate of one access of `len` bytes: `Err` injects a
    /// transient failure, `Ok(Some(keep))` truncates to a non-empty
    /// prefix, `Ok(None)` passes through untouched.
    fn fate(&self, len: usize, op: &str) -> io::Result<Option<usize>> {
        let r = self.roll();
        if (r & 0xFF) < self.plan.transient_per_256 as u64 && self.claim_transient() {
            self.record_injection();
            return Err(self.transient_error(r, op));
        }
        self.consec_transient.store(0, Ordering::Relaxed);
        if ((r >> 16) & 0xFF) < self.plan.short_per_256 as u64 && len > 1 {
            self.record_injection();
            return Ok(Some(1 + ((r >> 24) as usize) % (len - 1)));
        }
        Ok(None)
    }
}

impl<F: StorageFile> StorageFile for FaultyFile<F> {
    // The inactive paths must cost a single predictable branch — gated by
    // the `fault_overhead` bench — so keep them inlinable.
    #[inline]
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if !self.active {
            return self.inner.read_at(offset, buf);
        }
        match self.fate(buf.len(), "read")? {
            Some(keep) => self.inner.read_at(offset, &mut buf[..keep]),
            None => self.inner.read_at(offset, buf),
        }
    }

    #[inline]
    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        if !self.active {
            return self.inner.write_at(offset, buf);
        }
        if let Some(limit) = self.plan.torn_after {
            // `bytes_written` counts *attempted* payload bytes, so the
            // fail-stop point is deterministic even under concurrency.
            let start = self
                .bytes_written
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            if start >= limit {
                self.record_injection();
                return Err(io::Error::other("injected fail-stop: device lost"));
            }
            if start + buf.len() as u64 > limit {
                let keep = (limit - start) as usize;
                self.inner.write_at(offset, &buf[..keep])?;
                self.record_injection();
                return Err(io::Error::other(
                    "injected torn write: only a prefix was persisted",
                ));
            }
        }
        match self.fate(buf.len(), "write")? {
            Some(keep) => self.inner.write_at(offset, &buf[..keep]),
            None => self.inner.write_at(offset, buf),
        }
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&self) -> io::Result<()> {
        if self.active && self.plan.flush_fail_first > 0 {
            let k = self.syncs.fetch_add(1, Ordering::Relaxed);
            if k < self.plan.flush_fail_first {
                self.record_injection();
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected flush fault",
                ));
            }
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemFile;

    #[test]
    fn counting_tracks_ops() {
        let f = CountingFile::new(MemFile::new());
        f.write_at(0, &[1; 100]).unwrap();
        let mut buf = [0u8; 40];
        f.read_at(0, &mut buf).unwrap();
        f.read_at(60, &mut buf).unwrap();
        let s = f.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_read, 80);
        f.reset();
        assert_eq!(f.stats(), IoStats::default());
    }

    #[test]
    fn counting_tracks_max_request_and_merge() {
        let f = CountingFile::new(MemFile::new());
        f.write_at(0, &[1; 100]).unwrap();
        f.write_at(0, &[1; 10]).unwrap();
        let mut buf = [0u8; 40];
        f.read_at(0, &mut buf).unwrap();
        let s = f.stats();
        assert_eq!(s.max_write, 100);
        assert_eq!(s.max_read, 40);

        let mut total = IoStats::default();
        total.merge(&s);
        let other = IoStats {
            reads: 1,
            bytes_read: 5,
            max_read: 512,
            ..IoStats::default()
        };
        total.merge(&other);
        assert_eq!(total.reads, s.reads + 1);
        assert_eq!(total.writes, 2);
        assert_eq!(total.bytes_read, s.bytes_read + 5);
        assert_eq!(total.max_read, 512);
        assert_eq!(total.max_write, 100);
    }

    #[test]
    fn throttled_delays_scale_with_bytes() {
        let slow = Throttle {
            read_bw: 1.0e6, // 1 MB/s
            write_bw: 1.0e6,
            latency: Duration::ZERO,
        };
        let f = ThrottledFile::new(MemFile::new(), slow);
        let t0 = Instant::now();
        f.write_at(0, &[0u8; 10_000]).unwrap(); // should cost ~10ms
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(9), "{elapsed:?}");
    }

    #[test]
    fn throttled_preserves_data() {
        let f = ThrottledFile::new(MemFile::new(), Throttle::sx6_local_fs());
        f.write_at(5, b"data").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(f.read_at(5, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"data");
    }

    #[test]
    fn throttle_delay_reaches_deadline_in_tail_regime() {
        // Regression: delays in (SPIN_TAIL, 2·SPIN_TAIL] used to skip the
        // sleep and busy-spin the whole duration; and the post-sleep spin
        // was unbounded. The clamped version must still not return early,
        // in both the tail-only and sleep+tail regimes.
        for d in [Duration::from_micros(150), Duration::from_millis(5)] {
            let t0 = Instant::now();
            throttle_delay(d);
            let elapsed = t0.elapsed();
            assert!(elapsed >= d, "delay {d:?} returned after only {elapsed:?}");
        }
    }

    /// Outcome signature of an access, for determinism comparisons.
    fn sig(r: io::Result<usize>) -> String {
        match r {
            Ok(n) => format!("ok{n}"),
            Err(e) => format!("err{:?}", e.kind()),
        }
    }

    #[test]
    fn faulty_same_seed_same_schedule() {
        let run = || {
            let f = FaultyFile::new(MemFile::with_data(vec![7; 256]), FaultPlan::seeded(0xFA11));
            let mut out = Vec::new();
            let mut buf = [0u8; 32];
            for i in 0..64u64 {
                out.push(sig(f.read_at(i % 200, &mut buf)));
                out.push(sig(f.write_at(i % 200, &buf)));
            }
            out.push(sig(f.sync().map(|()| 0)));
            out
        };
        assert_eq!(run(), run(), "same seed must replay the same schedule");
    }

    #[test]
    fn faulty_short_transfers_move_at_least_one_byte() {
        let plan = FaultPlan {
            short_per_256: 255,
            transient_per_256: 0,
            ..FaultPlan::seeded(7)
        };
        let f = FaultyFile::new(MemFile::with_data(vec![7; 256]), plan);
        let mut buf = [0u8; 64];
        let mut shortened = 0;
        for _ in 0..50 {
            let n = f.read_at(0, &mut buf).unwrap();
            assert!((1..=64).contains(&n), "short read moved {n} bytes");
            if n < 64 {
                shortened += 1;
            }
            let n = f.write_at(0, &buf).unwrap();
            assert!((1..=64).contains(&n), "short write moved {n} bytes");
        }
        assert!(shortened > 0, "a 255/256 plan never shortened anything");
    }

    #[test]
    fn faulty_transient_runs_bounded_by_cap() {
        let plan = FaultPlan {
            short_per_256: 0,
            transient_per_256: 255,
            max_consecutive_transient: 3,
            ..FaultPlan::seeded(11)
        };
        let f = FaultyFile::new(MemFile::with_data(vec![7; 64]), plan);
        let mut buf = [0u8; 8];
        let (mut run, mut max_run, mut errs) = (0u32, 0u32, 0u32);
        for _ in 0..200 {
            match f.read_at(0, &mut buf) {
                Err(e) => {
                    assert!(
                        matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock
                                | io::ErrorKind::Interrupted
                                | io::ErrorKind::TimedOut
                        ),
                        "unexpected kind {:?}",
                        e.kind()
                    );
                    run += 1;
                    errs += 1;
                }
                Ok(_) => run = 0,
            }
            max_run = max_run.max(run);
        }
        assert!(errs > 0);
        assert!(
            max_run <= 3,
            "cap violated: {max_run} consecutive transients"
        );
    }

    #[test]
    fn faulty_torn_write_persists_prefix_then_fails_permanently() {
        let plan = FaultPlan {
            seed: 1,
            short_per_256: 0,
            transient_per_256: 0,
            max_consecutive_transient: 0,
            torn_after: Some(10),
            flush_fail_first: 0,
        };
        let f = FaultyFile::new(MemFile::new(), plan);
        assert_eq!(f.write_at(0, &[1u8; 8]).unwrap(), 8);
        let e = f.write_at(8, &[2u8; 8]).unwrap_err();
        assert_eq!(
            e.kind(),
            io::ErrorKind::Other,
            "torn write must be permanent"
        );
        let snap = f.inner().snapshot();
        assert_eq!(
            snap,
            [1, 1, 1, 1, 1, 1, 1, 1, 2, 2],
            "prefix up to the limit persists"
        );
        assert!(
            f.write_at(20, &[3u8; 4]).is_err(),
            "writes after fail-stop all fail"
        );
        assert_eq!(
            f.inner().snapshot().len(),
            10,
            "no bytes persisted after fail-stop"
        );
    }

    #[test]
    fn faulty_flush_fails_first_k_then_recovers() {
        let plan = FaultPlan {
            flush_fail_first: 2,
            ..FaultPlan::disabled()
        };
        let f = FaultyFile::new(MemFile::new(), FaultPlan { seed: 3, ..plan });
        assert!(f.sync().is_err());
        assert!(f.sync().is_err());
        assert!(f.sync().is_ok());
        assert_eq!(f.injected(), 2);
    }

    #[test]
    fn faulty_disabled_plan_is_passthrough() {
        let f = FaultyFile::new(MemFile::with_data(vec![9; 128]), FaultPlan::disabled());
        let mut buf = [0u8; 64];
        for _ in 0..50 {
            assert_eq!(f.read_at(0, &mut buf).unwrap(), 64);
            assert_eq!(f.write_at(0, &buf).unwrap(), 64);
        }
        f.sync().unwrap();
        assert_eq!(f.injected(), 0);
    }
}
