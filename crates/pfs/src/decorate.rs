//! Storage-file decorators: throttling, statistics, and fault injection.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lio_obs::{LazyCounter, LazyGauge, LazyHistogram};

use crate::file::StorageFile;

/// Storage-layer metrics, fed by [`CountingFile`] (and the other
/// decorators) into the global `lio-obs` registry. The request-size
/// histograms are what make the paper's access-granularity arguments
/// visible: data sieving should shift mass from tiny buckets to
/// buffer-sized ones.
static OBS_READ_CALLS: LazyCounter = LazyCounter::new("pfs.read.calls");
static OBS_READ_BYTES: LazyCounter = LazyCounter::new("pfs.read.bytes");
static OBS_WRITE_CALLS: LazyCounter = LazyCounter::new("pfs.write.calls");
static OBS_WRITE_BYTES: LazyCounter = LazyCounter::new("pfs.write.bytes");
static OBS_READ_SIZE: LazyHistogram = LazyHistogram::new("pfs.read.size");
static OBS_WRITE_SIZE: LazyHistogram = LazyHistogram::new("pfs.write.size");
static OBS_THROTTLE_NS: LazyCounter = LazyCounter::new("pfs.throttle.delay_ns");
static OBS_FAULTS_INJECTED: LazyCounter = LazyCounter::new("pfs.faults.injected");
/// High-water mark of concurrently in-flight throttled storage ops,
/// process-wide. > 1 proves the pipelined collective engine genuinely
/// overlapped storage accesses (reads against writes, or storage
/// against exchange on another rank).
static OBS_OPS_INFLIGHT_MAX: LazyGauge = LazyGauge::new("pfs.ops.inflight_max");

/// Current in-flight throttled ops across all [`ThrottledFile`]s.
static THROTTLE_INFLIGHT: AtomicU64 = AtomicU64::new(0);

/// A bandwidth/latency model emulating a particular storage system.
///
/// The paper's SX-6 testbed sustains ~6.5 GB/s writes and ~8 GB/s reads
/// ([`Throttle::sx6_local_fs`]). Each access costs `latency` plus
/// `bytes / bandwidth`. Short delays are realized with a calibrated
/// spin-wait so that sub-microsecond costs are representable (OS sleep
/// granularity is far too coarse at these rates); long delays sleep for
/// the bulk and spin only the tail, so a modelled slow device genuinely
/// yields the CPU — required for the pipelined collective engine's
/// storage/exchange overlap to be real rather than an artifact of
/// busy-waiting threads contending for cores.
#[derive(Debug, Clone, Copy)]
pub struct Throttle {
    /// Sustained read bandwidth in bytes/second.
    pub read_bw: f64,
    /// Sustained write bandwidth in bytes/second.
    pub write_bw: f64,
    /// Fixed per-access latency.
    pub latency: Duration,
}

impl Throttle {
    /// The local file system of the paper's SX-6/SX-7 nodes: 6.5 GB/s
    /// write, 8 GB/s read, negligible access latency.
    pub fn sx6_local_fs() -> Throttle {
        Throttle {
            read_bw: 8.0e9,
            write_bw: 6.5e9,
            latency: Duration::from_micros(10),
        }
    }

    /// A commodity NFS-class file system: ~100 MB/s with high per-access
    /// latency — the regime where file access time hides CPU overheads
    /// (useful as the ablation contrast).
    pub fn commodity_nfs() -> Throttle {
        Throttle {
            read_bw: 1.0e8,
            write_bw: 1.0e8,
            latency: Duration::from_micros(500),
        }
    }

    fn delay_for(&self, bytes: usize, write: bool) -> Duration {
        let bw = if write { self.write_bw } else { self.read_bw };
        self.latency + Duration::from_secs_f64(bytes as f64 / bw)
    }
}

/// Wraps a [`StorageFile`] to emulate a given bandwidth/latency profile.
pub struct ThrottledFile<F> {
    inner: F,
    throttle: Throttle,
}

impl<F: StorageFile> ThrottledFile<F> {
    /// Throttle `inner` to the given profile.
    pub fn new(inner: F, throttle: Throttle) -> ThrottledFile<F> {
        ThrottledFile { inner, throttle }
    }

    /// The wrapped file.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

/// Spin-only tail of a hybrid delay: delays at most this long (and the
/// final stretch of longer ones) busy-wait for precision; everything
/// above sleeps first so the waiting thread yields its core.
const SPIN_TAIL: Duration = Duration::from_micros(100);

fn throttle_delay(d: Duration) {
    let start = Instant::now();
    if d > SPIN_TAIL.saturating_mul(2) {
        std::thread::sleep(d - SPIN_TAIL);
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// RAII guard maintaining the in-flight-ops high-water mark.
struct InflightOp;

impl InflightOp {
    fn enter() -> InflightOp {
        let cur = THROTTLE_INFLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
        OBS_OPS_INFLIGHT_MAX.record_max(cur);
        InflightOp
    }
}

impl Drop for InflightOp {
    fn drop(&mut self) {
        THROTTLE_INFLIGHT.fetch_sub(1, Ordering::Relaxed);
    }
}

impl<F: StorageFile> StorageFile for ThrottledFile<F> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let _op = InflightOp::enter();
        let n = self.inner.read_at(offset, buf)?;
        let d = self.throttle.delay_for(n, false);
        OBS_THROTTLE_NS.add(d.as_nanos() as u64);
        throttle_delay(d);
        Ok(n)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        let _op = InflightOp::enter();
        let n = self.inner.write_at(offset, buf)?;
        let d = self.throttle.delay_for(n, true);
        OBS_THROTTLE_NS.add(d.as_nanos() as u64);
        throttle_delay(d);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

/// Access statistics collected by [`CountingFile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of read calls.
    pub reads: u64,
    /// Number of write calls.
    pub writes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Largest single read request, in bytes.
    pub max_read: u64,
    /// Largest single write request, in bytes.
    pub max_write: u64,
}

impl IoStats {
    /// Fold `other` into `self`: totals add, maxima take the larger value.
    /// Useful for aggregating per-rank or per-file stats.
    pub fn merge(&mut self, other: &IoStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.max_read = self.max_read.max(other.max_read);
        self.max_write = self.max_write.max(other.max_write);
    }
}

/// Wraps a [`StorageFile`] and counts accesses and bytes — used by the
/// overhead ablation benches to show, e.g., how data sieving trades access
/// count against transferred volume.
pub struct CountingFile<F> {
    inner: F,
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    max_read: AtomicU64,
    max_write: AtomicU64,
}

impl<F: StorageFile> CountingFile<F> {
    /// Wrap `inner` with fresh counters.
    pub fn new(inner: F) -> CountingFile<F> {
        CountingFile {
            inner,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            max_read: AtomicU64::new(0),
            max_write: AtomicU64::new(0),
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            max_read: self.max_read.load(Ordering::Relaxed),
            max_write: self.max_write.load(Ordering::Relaxed),
        }
    }

    /// Reset the counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.max_read.store(0, Ordering::Relaxed);
        self.max_write.store(0, Ordering::Relaxed);
    }

    /// The wrapped file.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: StorageFile> StorageFile for CountingFile<F> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read_at(offset, buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
        self.max_read.fetch_max(buf.len() as u64, Ordering::Relaxed);
        OBS_READ_CALLS.incr();
        OBS_READ_BYTES.add(n as u64);
        OBS_READ_SIZE.record(buf.len() as u64);
        Ok(n)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write_at(offset, buf)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
        self.max_write
            .fetch_max(buf.len() as u64, Ordering::Relaxed);
        OBS_WRITE_CALLS.incr();
        OBS_WRITE_BYTES.add(n as u64);
        OBS_WRITE_SIZE.record(buf.len() as u64);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

/// Fault-injection plan for [`FaultyFile`].
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Every `short_every`-th access (1-based) is truncated to half its
    /// length (0 disables).
    pub short_every: u64,
    /// Every `fail_every`-th access returns `ErrorKind::Other` (0
    /// disables).
    pub fail_every: u64,
}

/// Wraps a [`StorageFile`] and deterministically injects short transfers
/// and errors, for exercising the I/O layer's retry/short-read handling.
pub struct FaultyFile<F> {
    inner: F,
    plan: FaultPlan,
    ops: AtomicU64,
}

impl<F: StorageFile> FaultyFile<F> {
    /// Wrap `inner` under the given fault plan.
    pub fn new(inner: F, plan: FaultPlan) -> FaultyFile<F> {
        FaultyFile {
            inner,
            plan,
            ops: AtomicU64::new(0),
        }
    }

    fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn should_fail(&self, op: u64) -> bool {
        self.plan.fail_every != 0 && op.is_multiple_of(self.plan.fail_every)
    }

    fn should_shorten(&self, op: u64) -> bool {
        self.plan.short_every != 0 && op.is_multiple_of(self.plan.short_every)
    }
}

impl<F: StorageFile> StorageFile for FaultyFile<F> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let op = self.next_op();
        if self.should_fail(op) {
            OBS_FAULTS_INJECTED.incr();
            return Err(io::Error::other("injected read fault"));
        }
        if self.should_shorten(op) && buf.len() > 1 {
            OBS_FAULTS_INJECTED.incr();
            let half = buf.len() / 2;
            return self.inner.read_at(offset, &mut buf[..half]);
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        let op = self.next_op();
        if self.should_fail(op) {
            OBS_FAULTS_INJECTED.incr();
            return Err(io::Error::other("injected write fault"));
        }
        if self.should_shorten(op) && buf.len() > 1 {
            OBS_FAULTS_INJECTED.incr();
            let half = buf.len() / 2;
            return self.inner.write_at(offset, &buf[..half]);
        }
        self.inner.write_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemFile;

    #[test]
    fn counting_tracks_ops() {
        let f = CountingFile::new(MemFile::new());
        f.write_at(0, &[1; 100]).unwrap();
        let mut buf = [0u8; 40];
        f.read_at(0, &mut buf).unwrap();
        f.read_at(60, &mut buf).unwrap();
        let s = f.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_read, 80);
        f.reset();
        assert_eq!(f.stats(), IoStats::default());
    }

    #[test]
    fn counting_tracks_max_request_and_merge() {
        let f = CountingFile::new(MemFile::new());
        f.write_at(0, &[1; 100]).unwrap();
        f.write_at(0, &[1; 10]).unwrap();
        let mut buf = [0u8; 40];
        f.read_at(0, &mut buf).unwrap();
        let s = f.stats();
        assert_eq!(s.max_write, 100);
        assert_eq!(s.max_read, 40);

        let mut total = IoStats::default();
        total.merge(&s);
        let other = IoStats {
            reads: 1,
            bytes_read: 5,
            max_read: 512,
            ..IoStats::default()
        };
        total.merge(&other);
        assert_eq!(total.reads, s.reads + 1);
        assert_eq!(total.writes, 2);
        assert_eq!(total.bytes_read, s.bytes_read + 5);
        assert_eq!(total.max_read, 512);
        assert_eq!(total.max_write, 100);
    }

    #[test]
    fn throttled_delays_scale_with_bytes() {
        let slow = Throttle {
            read_bw: 1.0e6, // 1 MB/s
            write_bw: 1.0e6,
            latency: Duration::ZERO,
        };
        let f = ThrottledFile::new(MemFile::new(), slow);
        let t0 = Instant::now();
        f.write_at(0, &[0u8; 10_000]).unwrap(); // should cost ~10ms
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(9), "{elapsed:?}");
    }

    #[test]
    fn throttled_preserves_data() {
        let f = ThrottledFile::new(MemFile::new(), Throttle::sx6_local_fs());
        f.write_at(5, b"data").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(f.read_at(5, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"data");
    }

    #[test]
    fn faulty_injects_errors() {
        let f = FaultyFile::new(
            MemFile::with_data(vec![7; 64]),
            FaultPlan {
                short_every: 0,
                fail_every: 3,
            },
        );
        let mut buf = [0u8; 8];
        assert!(f.read_at(0, &mut buf).is_ok()); // op 1
        assert!(f.read_at(0, &mut buf).is_ok()); // op 2
        assert!(f.read_at(0, &mut buf).is_err()); // op 3
        assert!(f.read_at(0, &mut buf).is_ok()); // op 4
    }

    #[test]
    fn faulty_shortens_transfers() {
        let f = FaultyFile::new(
            MemFile::with_data(vec![7; 64]),
            FaultPlan {
                short_every: 2,
                fail_every: 0,
            },
        );
        let mut buf = [0u8; 8];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 8); // op 1
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 4); // op 2: shortened
    }
}
