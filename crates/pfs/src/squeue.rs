//! A submission-queue / completion-queue abstraction over a storage
//! device, served by a worker threadpool.
//!
//! This is the asynchronous spine of the real-storage backend
//! ([`crate::os::OsFile`]): callers enqueue [`Sqe`]s (read / write /
//! sync, each carrying a user token and a buffer) and harvest [`Cqe`]s
//! from a per-caller reply channel **in whatever order the device
//! completes them**. The API is deliberately shaped like io_uring's ring
//! pair — bounded submission depth with backpressure, opaque user tokens
//! echoed on completion, out-of-order harvest — so an io_uring (or
//! `O_DIRECT` + AIO) implementation can replace the threadpool behind the
//! same types without touching any caller.
//!
//! Worker semantics: each dequeued entry is executed as a *full* I/O
//! against the device via [`crate::retry`] — short transfers are resumed
//! and transient `EINTR`/`EAGAIN`-class errors retried with bounded
//! backoff inside the worker, so a completion is short only at
//! end-of-file and errors surfacing in a [`Cqe`] are permanent. This is
//! exactly the contract the collective layer already relies on for
//! synchronous backends.
//!
//! Scheduling is FIFO by default. A seeded shuffle
//! ([`QueueConfig::shuffle_seed`]) makes workers pick queued entries
//! pseudo-randomly — with a single worker this yields a fully
//! deterministic out-of-order completion schedule, which the reordering
//! tests use to prove harvest-side correctness without real device
//! nondeterminism.

use std::collections::VecDeque;
use std::io;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use lio_obs::{LazyCounter, LazyGauge};

use crate::file::StorageFile;
use crate::retry;

static OBS_SUBMITTED: LazyCounter = LazyCounter::new("pfs.os.sqe.submitted");
static OBS_COMPLETED: LazyCounter = LazyCounter::new("pfs.os.cqe.completed");
static OBS_READ_BYTES: LazyCounter = LazyCounter::new("pfs.os.read.bytes");
static OBS_WRITE_BYTES: LazyCounter = LazyCounter::new("pfs.os.write.bytes");
static OBS_SYNCS: LazyCounter = LazyCounter::new("pfs.os.sync.calls");
static OBS_FULL_WAITS: LazyCounter = LazyCounter::new("pfs.os.queue_full_waits");
static OBS_DEPTH_MAX: LazyGauge = LazyGauge::new("pfs.os.queue_depth_max");

/// A borrowed byte range submitted for writing. Constructed only by
/// callers that guarantee the memory outlives the submission (see
/// [`RawSlice::new`]).
pub struct RawSlice {
    ptr: *const u8,
    len: usize,
}

/// A borrowed mutable byte range submitted for reading into.
pub struct RawSliceMut {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: these are plain pointers into caller-owned memory; the unsafe
// constructors place the lifetime obligation on the caller, after which
// shipping the pointer to a worker thread is sound.
unsafe impl Send for RawSlice {}
unsafe impl Send for RawSliceMut {}

impl RawSlice {
    /// Wrap caller-owned memory for a write submission.
    ///
    /// # Safety
    /// The memory `[ptr, ptr + len)` must stay valid and unmodified until
    /// the submission's [`Cqe`] has been received (or the reply channel's
    /// disconnection observed). [`crate::os::OsFile`] satisfies this by
    /// draining every reply before its blocking facade returns.
    pub unsafe fn new(ptr: *const u8, len: usize) -> RawSlice {
        RawSlice { ptr, len }
    }
}

impl RawSliceMut {
    /// Wrap caller-owned memory for a read submission.
    ///
    /// # Safety
    /// As [`RawSlice::new`], and additionally the range must not be
    /// aliased by any other live reference while the submission is in
    /// flight.
    pub unsafe fn new(ptr: *mut u8, len: usize) -> RawSliceMut {
        RawSliceMut { ptr, len }
    }
}

/// The buffer attached to a submission, returned to the caller inside
/// the matching [`Cqe`].
pub enum SqBuf {
    /// An owned heap buffer (the pipelined engine's window buffers).
    Owned(Vec<u8>),
    /// An aligned staging buffer (unaligned head/tail fragments).
    Aligned(crate::aligned::AlignedBuf),
    /// Borrowed caller memory, write submissions (zero-copy body).
    Raw(RawSlice),
    /// Borrowed caller memory, read submissions (zero-copy body).
    RawMut(RawSliceMut),
}

impl SqBuf {
    /// The readable bytes (write submissions).
    pub fn as_io(&self) -> &[u8] {
        match self {
            SqBuf::Owned(v) => v,
            SqBuf::Aligned(b) => b.as_slice(),
            // SAFETY: validity guaranteed by the RawSlice constructor's
            // contract.
            SqBuf::Raw(r) => unsafe { std::slice::from_raw_parts(r.ptr, r.len) },
            SqBuf::RawMut(r) => unsafe { std::slice::from_raw_parts(r.ptr, r.len) },
        }
    }

    /// The writable bytes (read submissions). Panics on [`SqBuf::Raw`],
    /// which is read-only by construction.
    pub fn as_io_mut(&mut self) -> &mut [u8] {
        match self {
            SqBuf::Owned(v) => v,
            SqBuf::Aligned(b) => b.as_mut_slice(),
            SqBuf::Raw(_) => panic!("read submission carries a read-only buffer"),
            // SAFETY: validity and exclusivity guaranteed by the
            // RawSliceMut constructor's contract.
            SqBuf::RawMut(r) => unsafe { std::slice::from_raw_parts_mut(r.ptr, r.len) },
        }
    }

    /// Recover the owned buffer, if this submission carried one.
    pub fn into_owned(self) -> Option<Vec<u8>> {
        match self {
            SqBuf::Owned(v) => Some(v),
            _ => None,
        }
    }
}

/// The operation a submission requests.
pub enum SqOp {
    /// Read `len` bytes at `off` into the front of `buf`.
    Read { off: u64, buf: SqBuf, len: usize },
    /// Write the front `len` bytes of `buf` at `off`.
    Write { off: u64, buf: SqBuf, len: usize },
    /// Flush the device.
    Sync,
}

/// A submission-queue entry: an opaque caller token plus the operation.
pub struct Sqe {
    /// Echoed verbatim in the matching [`Cqe`]; the caller's correlation
    /// key for out-of-order harvest.
    pub token: u64,
    /// The requested operation.
    pub op: SqOp,
}

impl Sqe {
    /// A read of `len` bytes at `off` into `buf`.
    pub fn read(token: u64, off: u64, buf: SqBuf, len: usize) -> Sqe {
        Sqe {
            token,
            op: SqOp::Read { off, buf, len },
        }
    }

    /// A write of `buf`'s front `len` bytes at `off`.
    pub fn write(token: u64, off: u64, buf: SqBuf, len: usize) -> Sqe {
        Sqe {
            token,
            op: SqOp::Write { off, buf, len },
        }
    }

    /// A flush.
    pub fn sync(token: u64) -> Sqe {
        Sqe {
            token,
            op: SqOp::Sync,
        }
    }
}

/// A completion-queue entry.
pub struct Cqe {
    /// The submission's token.
    pub token: u64,
    /// Bytes transferred. Reads are short only at end-of-file; writes
    /// and syncs report the full requested length on success. Errors are
    /// permanent (transients were already retried by the worker).
    pub result: io::Result<usize>,
    /// The submission's buffer, returned to the caller (absent for
    /// syncs).
    pub buf: Option<SqBuf>,
    /// The requested transfer length, echoed for the caller's
    /// zero-fill/short-read bookkeeping.
    pub len: usize,
    /// Device service time for this entry in nanoseconds, excluding any
    /// modelled-throttle spin tail (see [`crate::take_spin_ns`]).
    pub service_ns: u64,
}

/// Tuning for a [`SubmissionQueue`].
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Worker threads servicing the queue.
    pub workers: usize,
    /// Maximum queued (not yet dequeued) submissions before
    /// [`SubmissionQueue::submit`] blocks.
    pub depth: usize,
    /// `Some(seed)`: workers pick queued entries pseudo-randomly
    /// (xorshift64*-seeded) instead of FIFO. With one worker this gives a
    /// deterministic out-of-order completion schedule for tests.
    pub shuffle_seed: Option<u64>,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            workers: 4,
            depth: 64,
            shuffle_seed: None,
        }
    }
}

struct Entry {
    sqe: Sqe,
    reply: Sender<Cqe>,
    /// The submitting rank's health identity: the servicing worker
    /// adopts it so its heartbeats attribute storage progress to the
    /// rank that asked for the I/O.
    health: lio_obs::health::Handle,
}

struct QState {
    entries: VecDeque<Entry>,
    shutdown: bool,
    rng: u64,
}

struct Shared {
    state: Mutex<QState>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The submission/completion queue: a bounded ring of pending [`Sqe`]s
/// drained by a worker threadpool over an `Arc<dyn StorageFile>` device.
/// See the module docs for semantics and the io_uring drop-in seam.
pub struct SubmissionQueue {
    shared: Arc<Shared>,
    depth: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl SubmissionQueue {
    /// Spin up `cfg.workers` threads over `device`.
    pub fn new(device: Arc<dyn StorageFile>, cfg: QueueConfig) -> SubmissionQueue {
        let shared = Arc::new(Shared {
            state: Mutex::new(QState {
                entries: VecDeque::new(),
                shutdown: false,
                rng: cfg.shuffle_seed.unwrap_or(0),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let shuffle = cfg.shuffle_seed.is_some();
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let device = Arc::clone(&device);
                let th = lio_obs::trace::thread_handle();
                std::thread::spawn(move || {
                    lio_obs::trace::adopt(th);
                    worker_loop(&shared, &device, shuffle)
                })
            })
            .collect();
        SubmissionQueue {
            shared,
            depth: cfg.depth.max(1),
            workers,
        }
    }

    /// The queue's submission depth bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Worker threads servicing this queue.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue one submission, blocking while the queue is full. The
    /// matching [`Cqe`] is delivered on `reply`; completions across
    /// submissions arrive in device order, not submission order.
    pub fn submit(&self, sqe: Sqe, reply: &Sender<Cqe>) {
        let mut st = self.shared.state.lock().unwrap();
        while st.entries.len() >= self.depth {
            OBS_FULL_WAITS.incr();
            st = self.shared.not_full.wait(st).unwrap();
        }
        self.push(&mut st, sqe, reply);
        drop(st);
        self.shared.not_empty.notify_one();
    }

    /// Enqueue without blocking: returns the submission back when the
    /// queue is full.
    pub fn try_submit(&self, sqe: Sqe, reply: &Sender<Cqe>) -> Result<(), Sqe> {
        let mut st = self.shared.state.lock().unwrap();
        if st.entries.len() >= self.depth {
            return Err(sqe);
        }
        self.push(&mut st, sqe, reply);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    fn push(&self, st: &mut QState, sqe: Sqe, reply: &Sender<Cqe>) {
        st.entries.push_back(Entry {
            sqe,
            reply: reply.clone(),
            health: lio_obs::health::thread_handle(),
        });
        OBS_SUBMITTED.incr();
        OBS_DEPTH_MAX.record_max(st.entries.len() as u64);
        lio_obs::health::queue_depth(st.entries.len() as u64);
    }
}

impl Drop for SubmissionQueue {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn xorshift_star(x: &mut u64) -> u64 {
    let mut v = x.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    *x = v;
    v.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn worker_loop(shared: &Shared, device: &Arc<dyn StorageFile>, shuffle: bool) {
    loop {
        let entry = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if !st.entries.is_empty() {
                    let idx = if shuffle {
                        (xorshift_star(&mut st.rng) % st.entries.len() as u64) as usize
                    } else {
                        0
                    };
                    break st.entries.remove(idx).expect("index in range");
                }
                if st.shutdown {
                    return; // drained: every pending entry was serviced
                }
                st = shared.not_empty.wait(st).unwrap();
            }
        };
        shared.not_full.notify_one();
        service(device, entry);
    }
}

/// Execute one operation against the device with full-I/O retry
/// semantics, counters, and trace spans — the core shared by the worker
/// path ([`service`]) and the facade's single-segment inline fast path.
fn execute(device: &Arc<dyn StorageFile>, op: SqOp) -> (io::Result<usize>, Option<SqBuf>, usize) {
    match op {
        SqOp::Read { off, mut buf, len } => {
            let _sp = lio_obs::trace::span_ab("os.sqe.read", off, len as u64);
            let r = retry::read_full_at(&**device, off, &mut buf.as_io_mut()[..len]);
            if let Ok(n) = r {
                OBS_READ_BYTES.add(n as u64);
            }
            (r, Some(buf), len)
        }
        SqOp::Write { off, buf, len } => {
            let _sp = lio_obs::trace::span_ab("os.sqe.write", off, len as u64);
            let r = retry::write_full_at(&**device, off, &buf.as_io()[..len]).map(|()| len);
            if r.is_ok() {
                OBS_WRITE_BYTES.add(len as u64);
            }
            (r, Some(buf), len)
        }
        SqOp::Sync => {
            let _sp = lio_obs::trace::span("os.sqe.sync");
            OBS_SYNCS.incr();
            (retry::sync_with_retry(&**device).map(|()| 0), None, 0)
        }
    }
}

/// Execute one operation on the caller's thread with the exact worker
/// semantics. Used by the facade for batches of one, where a worker
/// handoff buys no parallelism and its scheduler wakes are pure
/// overhead. No throttle-spin bookkeeping: on the caller's thread any
/// modelled spin stays in the caller's ledger, the ordinary
/// synchronous-backend contract.
pub(crate) fn execute_inline(
    device: &Arc<dyn StorageFile>,
    op: SqOp,
) -> (io::Result<usize>, Option<SqBuf>) {
    OBS_SUBMITTED.incr();
    let (result, buf, _len) = execute(device, op);
    OBS_COMPLETED.incr();
    // Inline service runs on the submitting rank's own thread: the
    // heartbeat needs no adoption.
    lio_obs::health::beat_bytes(
        lio_obs::health::HbPhase::Io,
        result.as_ref().map(|&n| n as u64).unwrap_or(0),
    );
    (result, buf)
}

/// Execute one entry against the device with full-I/O retry semantics
/// and send its completion. A dropped reply receiver is fine — the
/// caller abandoned the harvest and the buffer dies with the Cqe.
fn service(device: &Arc<dyn StorageFile>, entry: Entry) {
    let Entry { sqe, reply, health } = entry;
    let Sqe { token, op } = sqe;
    lio_obs::health::adopt(health);
    crate::take_spin_ns(); // reset this thread's throttle-spin ledger
    let t0 = Instant::now();
    let (result, buf, len) = execute(device, op);
    let spin = crate::take_spin_ns();
    let service_ns = (t0.elapsed().as_nanos() as u64).saturating_sub(spin);
    OBS_COMPLETED.incr();
    // Every serviced entry is progress for the submitting rank — a slow
    // device still beats once per completion, so slow ≠ stuck.
    lio_obs::health::beat_bytes(
        lio_obs::health::HbPhase::Io,
        result.as_ref().map(|&n| n as u64).unwrap_or(0),
    );
    let _ = reply.send(Cqe {
        token,
        result,
        buf,
        len,
        service_ns,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemFile;
    use std::sync::mpsc;

    fn queue_over(data: Vec<u8>, cfg: QueueConfig) -> (SubmissionQueue, Arc<MemFile>) {
        let mem = Arc::new(MemFile::with_data(data));
        let q = SubmissionQueue::new(Arc::clone(&mem) as Arc<dyn StorageFile>, cfg);
        (q, mem)
    }

    #[test]
    fn roundtrip_read_write() {
        let (q, mem) = queue_over(Vec::new(), QueueConfig::default());
        let (tx, rx) = mpsc::channel();
        q.submit(
            Sqe::write(1, 0, SqBuf::Owned(b"hello world".to_vec()), 11),
            &tx,
        );
        let cqe = rx.recv().unwrap();
        assert_eq!(cqe.token, 1);
        assert_eq!(cqe.result.unwrap(), 11);
        assert_eq!(mem.snapshot(), b"hello world");
        q.submit(Sqe::read(2, 6, SqBuf::Owned(vec![0; 5]), 5), &tx);
        let cqe = rx.recv().unwrap();
        assert_eq!(cqe.result.unwrap(), 5);
        assert_eq!(cqe.buf.unwrap().into_owned().unwrap(), b"world");
    }

    #[test]
    fn zero_length_submissions_complete() {
        let (q, _mem) = queue_over(vec![9u8; 16], QueueConfig::default());
        let (tx, rx) = mpsc::channel();
        q.submit(Sqe::read(0, 4, SqBuf::Owned(Vec::new()), 0), &tx);
        q.submit(Sqe::write(1, 4, SqBuf::Owned(Vec::new()), 0), &tx);
        q.submit(Sqe::sync(2), &tx);
        let mut tokens: Vec<u64> = (0..3)
            .map(|_| rx.recv().unwrap())
            .map(|c| c.token)
            .collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![0, 1, 2]);
    }

    #[test]
    fn read_past_eof_completes_short() {
        let (q, _mem) = queue_over(vec![7u8; 10], QueueConfig::default());
        let (tx, rx) = mpsc::channel();
        q.submit(Sqe::read(0, 4, SqBuf::Owned(vec![0; 32]), 32), &tx);
        let cqe = rx.recv().unwrap();
        assert_eq!(cqe.result.unwrap(), 6, "short only at EOF");
        assert_eq!(cqe.len, 32);
        let buf = cqe.buf.unwrap().into_owned().unwrap();
        assert_eq!(&buf[..6], &[7u8; 6]);
    }

    #[test]
    fn seeded_shuffle_reorders_deterministically() {
        // One worker + shuffle: the completion order is a deterministic
        // function of the seed — and must differ from FIFO.
        let run = |seed: Option<u64>| -> Vec<u64> {
            let mem = Arc::new(MemFile::with_data(vec![1u8; 1 << 16]));
            let (tx, rx) = mpsc::channel();
            // Hold the single worker on its first op while the rest queue
            // up, so the shuffle has a full, deterministic queue to pick
            // from. The gate reports when it is entered, so submissions
            // racing the first dequeue cannot perturb the schedule.
            let (gate_tx, gate_rx) = mpsc::channel();
            let (entered_tx, entered_rx) = mpsc::channel();
            struct Gate(
                std::sync::Mutex<Option<(mpsc::Sender<()>, mpsc::Receiver<()>)>>,
                Arc<MemFile>,
            );
            impl StorageFile for Gate {
                fn read_at(&self, o: u64, b: &mut [u8]) -> io::Result<usize> {
                    if let Some((entered, rx)) = self.0.lock().unwrap().take() {
                        let _ = entered.send(());
                        let _ = rx.recv();
                    }
                    self.1.read_at(o, b)
                }
                fn write_at(&self, o: u64, b: &[u8]) -> io::Result<usize> {
                    self.1.write_at(o, b)
                }
                fn len(&self) -> u64 {
                    self.1.len()
                }
                fn set_len(&self, l: u64) -> io::Result<()> {
                    self.1.set_len(l)
                }
                fn sync(&self) -> io::Result<()> {
                    self.1.sync()
                }
            }
            let gate = Gate(
                std::sync::Mutex::new(Some((entered_tx, gate_rx))),
                Arc::clone(&mem),
            );
            let q = SubmissionQueue::new(
                Arc::new(gate) as Arc<dyn StorageFile>,
                QueueConfig {
                    workers: 1,
                    depth: 64,
                    shuffle_seed: seed,
                },
            );
            q.submit(Sqe::read(1000, 0, SqBuf::Owned(vec![0; 8]), 8), &tx);
            entered_rx.recv().unwrap(); // worker holds the gate entry
            for i in 0..16u64 {
                q.submit(Sqe::read(i, i * 8, SqBuf::Owned(vec![0; 8]), 8), &tx);
            }
            gate_tx.send(()).unwrap();
            let mut order = Vec::new();
            for _ in 0..17 {
                order.push(rx.recv().unwrap().token);
            }
            order
        };
        let fifo = run(None);
        assert_eq!(fifo[1..], (0..16u64).collect::<Vec<_>>()[..]);
        let a = run(Some(0xBAD5EED));
        let b = run(Some(0xBAD5EED));
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, fifo, "shuffle must actually reorder");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        let mut expect: Vec<u64> = (0..16).collect();
        expect.push(1000);
        assert_eq!(sorted, expect, "every submission completes exactly once");
    }

    #[test]
    fn queue_full_backpressure() {
        // A gated device stalls the lone worker; depth 2 then refuses a
        // third queued entry until the gate opens.
        struct Block(std::sync::Mutex<mpsc::Receiver<()>>);
        impl StorageFile for Block {
            fn read_at(&self, _o: u64, _b: &mut [u8]) -> io::Result<usize> {
                let _ = self.0.lock().unwrap().recv();
                Ok(0)
            }
            fn write_at(&self, _o: u64, b: &[u8]) -> io::Result<usize> {
                Ok(b.len())
            }
            fn len(&self) -> u64 {
                0
            }
            fn set_len(&self, _l: u64) -> io::Result<()> {
                Ok(())
            }
            fn sync(&self) -> io::Result<()> {
                Ok(())
            }
        }
        let (gate_tx, gate_rx) = mpsc::channel();
        let q = SubmissionQueue::new(
            Arc::new(Block(std::sync::Mutex::new(gate_rx))) as Arc<dyn StorageFile>,
            QueueConfig {
                workers: 1,
                depth: 2,
                shuffle_seed: None,
            },
        );
        let (tx, rx) = mpsc::channel();
        // First read is dequeued by the worker and blocks on the gate;
        // two more fill the queue to its depth.
        q.submit(Sqe::read(0, 0, SqBuf::Owned(vec![0; 4]), 4), &tx);
        // Wait for the worker to have dequeued the first entry.
        loop {
            if q.try_submit(Sqe::read(1, 0, SqBuf::Owned(vec![0; 4]), 4), &tx)
                .is_ok()
            {
                break;
            }
            std::thread::yield_now();
        }
        while q
            .try_submit(Sqe::read(2, 0, SqBuf::Owned(vec![0; 4]), 4), &tx)
            .is_err()
        {
            std::thread::yield_now();
        }
        // Now 2 are queued (depth reached) while the first is in service.
        let refused = q.try_submit(Sqe::read(3, 0, SqBuf::Owned(vec![0; 4]), 4), &tx);
        assert!(refused.is_err(), "queue at depth must refuse try_submit");
        let sqe = refused.err().unwrap();
        assert_eq!(sqe.token, 3, "the refused submission comes back intact");
        // Open the gate: everything drains and a blocking submit succeeds.
        for _ in 0..4 {
            let _ = gate_tx.send(());
        }
        q.submit(sqe, &tx);
        let mut tokens: Vec<u64> = (0..4).map(|_| rx.recv().unwrap().token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![0, 1, 2, 3]);
    }

    #[test]
    fn drop_drains_pending_work() {
        let (q, mem) = queue_over(
            Vec::new(),
            QueueConfig {
                workers: 2,
                depth: 64,
                shuffle_seed: None,
            },
        );
        let (tx, rx) = mpsc::channel();
        for i in 0..32u64 {
            q.submit(
                Sqe::write(i, i * 4, SqBuf::Owned(vec![i as u8 + 1; 4]), 4),
                &tx,
            );
        }
        drop(q); // must join only after servicing all 32
        drop(tx);
        assert_eq!(rx.iter().count(), 32);
        assert_eq!(mem.len(), 128);
    }
}
