//! `OsFile` — the real-OS-file backend: a synchronous [`StorageFile`]
//! facade over an asynchronous [`SubmissionQueue`].
//!
//! Every `read_at`/`write_at` is planned by
//! [`crate::aligned::split_for_alignment`] into alignment-friendly
//! segments, submitted to the queue as a batch, and harvested
//! out-of-order before the call returns:
//!
//! * aligned body segments are submitted **zero-copy** — raw pointers
//!   into the caller's buffer ([`SqBuf::Raw`]/[`SqBuf::RawMut`]), sound
//!   because the facade drains every completion before returning;
//! * unaligned head/tail fragments are staged through pooled
//!   [`AlignedBuf`]s, so the device only ever sees aligned memory (the
//!   invariant an `O_DIRECT`/io_uring drop-in will require).
//!
//! The device beneath the queue is any [`StorageFile`]: a
//! [`crate::UnixFile`] for real kernel I/O (the normal configuration), a
//! [`crate::MemFile`] for deterministic queue tests, or a
//! [`crate::FaultyFile`]-wrapped file so the seeded fault schedules
//! exercise the worker threadpool's retry path. Consumers that know
//! about the queue (the pipelined collective engine) can bypass the
//! blocking facade entirely via [`StorageFile::submission`] and submit
//! whole windows asynchronously.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use crate::aligned::{split_for_alignment, AlignedPool, Segment};
use crate::file::{StorageFile, UnixFile};
use crate::squeue::{Cqe, QueueConfig, RawSlice, RawSliceMut, SqBuf, SqOp, Sqe, SubmissionQueue};

/// Tuning for an [`OsFile`].
#[derive(Debug, Clone, Copy)]
pub struct OsConfig {
    /// The submission queue (workers, depth, scheduling).
    pub queue: QueueConfig,
    /// Alignment for segment planning and staged buffers (power of two;
    /// typically the page size).
    pub align: usize,
    /// Largest single aligned segment; bigger transfers are split so
    /// they spread across workers.
    pub max_seg: usize,
}

impl Default for OsConfig {
    fn default() -> OsConfig {
        OsConfig {
            queue: QueueConfig::default(),
            align: 4096,
            max_seg: 4 << 20,
        }
    }
}

impl OsConfig {
    /// Defaults with `LIO_OS_WORKERS` / `LIO_OS_DEPTH` environment
    /// overrides applied (unparseable values are ignored).
    pub fn from_env() -> OsConfig {
        let mut cfg = OsConfig::default();
        if let Some(n) = env_usize("LIO_OS_WORKERS") {
            cfg.queue.workers = n.max(1);
        }
        if let Some(n) = env_usize("LIO_OS_DEPTH") {
            cfg.queue.depth = n.max(1);
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// The directory for backing files of unnamed ([`OsFile::temp`])
/// instances: `LIO_OS_DIR` if set (CI points it at tmpfs or a real
/// disk), the system temp directory otherwise.
pub fn os_dir() -> PathBuf {
    std::env::var_os("LIO_OS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Create an anonymous [`UnixFile`] in [`os_dir`]: the path is unlinked
/// immediately after opening, so the backing storage disappears when the
/// handle drops — no cleanup needed even on panic.
pub fn temp_unix() -> io::Result<UnixFile> {
    let dir = os_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!(
        "lio-os-{}-{}.bin",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let f = UnixFile::create(&path)?;
    std::fs::remove_file(&path)?;
    Ok(f)
}

/// A real-OS-file storage backend: batched, alignment-aware submission
/// over a worker threadpool, presented as a synchronous [`StorageFile`].
/// See the module docs.
pub struct OsFile {
    device: Arc<dyn StorageFile>,
    queue: SubmissionQueue,
    align: usize,
    max_seg: usize,
    pool: AlignedPool,
}

impl OsFile {
    /// Run the queue over an already-shared device.
    pub fn over_arc(device: Arc<dyn StorageFile>, cfg: OsConfig) -> OsFile {
        let queue = SubmissionQueue::new(Arc::clone(&device), cfg.queue);
        OsFile {
            device,
            queue,
            align: cfg.align.max(1).next_power_of_two(),
            max_seg: cfg.max_seg.max(cfg.align),
            pool: AlignedPool::new(cfg.align.max(1).next_power_of_two()),
        }
    }

    /// Run the queue over any device (in-memory, faulty, throttled, or a
    /// real [`UnixFile`]).
    pub fn over(device: impl StorageFile + 'static, cfg: OsConfig) -> OsFile {
        OsFile::over_arc(Arc::new(device), cfg)
    }

    /// Create (or truncate) a real file at `path` under [`OsConfig::from_env`].
    pub fn create(path: impl AsRef<Path>) -> io::Result<OsFile> {
        Ok(OsFile::over(UnixFile::create(path)?, OsConfig::from_env()))
    }

    /// Open an existing file at `path` under [`OsConfig::from_env`].
    pub fn open(path: impl AsRef<Path>) -> io::Result<OsFile> {
        Ok(OsFile::over(UnixFile::open(path)?, OsConfig::from_env()))
    }

    /// An anonymous real file in [`os_dir`] (unlinked at creation, so it
    /// cleans itself up) under [`OsConfig::from_env`].
    pub fn temp() -> io::Result<OsFile> {
        Ok(OsFile::over(temp_unix()?, OsConfig::from_env()))
    }

    /// The device beneath the queue.
    pub fn device(&self) -> &Arc<dyn StorageFile> {
        &self.device
    }

    /// The submission queue (also exposed via [`StorageFile::submission`]).
    pub fn queue(&self) -> &SubmissionQueue {
        &self.queue
    }

    /// Submit one transfer as planned segments and drain all
    /// completions. Returns per-segment results in segment order.
    ///
    /// Draining everything before returning is what makes the raw
    /// (zero-copy) segments sound: no worker can touch the caller's
    /// buffer after this function returns.
    fn run_batch(
        &self,
        segs: &[Segment],
        write: bool,
        mut make: impl FnMut(&Segment) -> SqBuf,
    ) -> io::Result<Vec<(io::Result<usize>, Option<SqBuf>)>> {
        // A batch of one gains nothing from the worker handoff — there
        // is no parallelism to unlock and the queue's fixed cost (two
        // scheduler wakes per op, worst on few-core hosts) is pure
        // overhead. Execute it inline with identical semantics.
        if let [seg] = segs {
            let buf = make(seg);
            let op = if write {
                SqOp::Write {
                    off: seg.off,
                    buf,
                    len: seg.len,
                }
            } else {
                SqOp::Read {
                    off: seg.off,
                    buf,
                    len: seg.len,
                }
            };
            let (res, buf) = crate::squeue::execute_inline(&self.device, op);
            return Ok(vec![(res, buf)]);
        }
        let (tx, rx) = mpsc::channel::<Cqe>();
        for (i, seg) in segs.iter().enumerate() {
            let buf = make(seg);
            let sqe = if write {
                Sqe::write(i as u64, seg.off, buf, seg.len)
            } else {
                Sqe::read(i as u64, seg.off, buf, seg.len)
            };
            self.queue.submit(sqe, &tx);
        }
        drop(tx);
        let mut out: Vec<Option<(io::Result<usize>, Option<SqBuf>)>> =
            (0..segs.len()).map(|_| None).collect();
        for _ in 0..segs.len() {
            match rx.recv() {
                Ok(cqe) => out[cqe.token as usize] = Some((cqe.result, cqe.buf)),
                // All reply senders died: every worker holding one of our
                // submissions has dropped it, so no borrowed memory is
                // referenced anymore and bailing out is sound.
                Err(_) => return Err(io::Error::other("submission queue workers died mid-batch")),
            }
        }
        Ok(out
            .into_iter()
            .map(|c| c.expect("every segment completed"))
            .collect())
    }
}

impl StorageFile for OsFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let segs = split_for_alignment(offset, buf.len(), self.align, self.max_seg);
        let base = buf.as_mut_ptr();
        let done = self.run_batch(&segs, false, |seg| {
            if seg.aligned {
                // SAFETY: disjoint segment ranges of `buf`; drained
                // before this call returns (see `run_batch`).
                SqBuf::RawMut(unsafe { RawSliceMut::new(base.add(seg.buf_off), seg.len) })
            } else {
                SqBuf::Aligned(self.pool.get(seg.len))
            }
        })?;
        // Assemble POSIX semantics: bytes are contiguous from the start,
        // short only at EOF — sum segment results in order and stop at
        // the first short one. The first in-order error wins.
        let mut total = 0usize;
        for (seg, (res, sqbuf)) in segs.iter().zip(done) {
            let n = res?;
            if let Some(SqBuf::Aligned(staged)) = sqbuf {
                buf[seg.buf_off..seg.buf_off + n].copy_from_slice(&staged.as_slice()[..n]);
                self.pool.put(staged);
            }
            total += n;
            if n < seg.len {
                break; // EOF inside this segment
            }
        }
        Ok(total)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let segs = split_for_alignment(offset, buf.len(), self.align, self.max_seg);
        let done = self.run_batch(&segs, true, |seg| {
            if seg.aligned {
                // SAFETY: shared borrow of `buf` held across the batch;
                // drained before this call returns.
                SqBuf::Raw(unsafe { RawSlice::new(buf[seg.buf_off..].as_ptr(), seg.len) })
            } else {
                let mut staged = self.pool.get(seg.len);
                staged.as_mut_slice()[..seg.len]
                    .copy_from_slice(&buf[seg.buf_off..seg.buf_off + seg.len]);
                SqBuf::Aligned(staged)
            }
        })?;
        // Workers write fully or fail; the first in-order error wins.
        for (res, sqbuf) in done {
            res?;
            if let Some(SqBuf::Aligned(staged)) = sqbuf {
                self.pool.put(staged);
            }
        }
        Ok(buf.len())
    }

    fn len(&self) -> u64 {
        // The blocking facade completes each caller's submissions before
        // returning, so a caller's own writes are always visible here.
        self.device.len()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.device.set_len(len)
    }

    fn sync(&self) -> io::Result<()> {
        // Always a batch of one: the facade completed every prior
        // submission before returning, so an inline flush sees them all.
        let (res, _) = crate::squeue::execute_inline(&self.device, SqOp::Sync);
        res.map(|_| ())
    }

    fn submission(&self) -> Option<&SubmissionQueue> {
        Some(&self.queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemFile;

    fn os_over_mem(data: Vec<u8>) -> (OsFile, Arc<MemFile>) {
        let mem = Arc::new(MemFile::with_data(data));
        let f = OsFile::over_arc(
            Arc::clone(&mem) as Arc<dyn StorageFile>,
            OsConfig::default(),
        );
        (f, mem)
    }

    fn pattern(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn unaligned_roundtrip_over_memory() {
        // Head fragment + multi-segment body + tail fragment, checked
        // byte-exactly against the device.
        let (f, mem) = os_over_mem(Vec::new());
        let data = pattern(3 * 4096 + 777, 42);
        assert_eq!(f.write_at(1234, &data).unwrap(), data.len());
        let mut back = vec![0u8; data.len()];
        assert_eq!(f.read_at(1234, &mut back).unwrap(), data.len());
        assert_eq!(back, data);
        let snap = mem.snapshot();
        assert_eq!(&snap[1234..1234 + data.len()], &data[..]);
        assert!(snap[..1234].iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_length_ops() {
        let (f, _mem) = os_over_mem(vec![1u8; 64]);
        assert_eq!(f.read_at(10, &mut []).unwrap(), 0);
        assert_eq!(f.write_at(10, &[]).unwrap(), 0);
        assert_eq!(f.len(), 64);
    }

    #[test]
    fn read_spanning_eof_is_short_and_zero_extends_nothing() {
        let (f, _mem) = os_over_mem(pattern(5000, 7));
        // Segments past EOF must collapse to a single short total, even
        // though the EOF lands mid-batch.
        let mut buf = vec![0xAAu8; 12000];
        assert_eq!(f.read_at(100, &mut buf).unwrap(), 4900);
        assert_eq!(&buf[..4900], &pattern(5000, 7)[100..]);
        // entirely past EOF
        assert_eq!(f.read_at(1 << 20, &mut buf).unwrap(), 0);
    }

    #[test]
    fn write_extends_the_file() {
        let (f, mem) = os_over_mem(Vec::new());
        assert_eq!(f.len(), 0);
        f.write_at(10_000, b"tail").unwrap();
        assert_eq!(f.len(), 10_004);
        let snap = mem.snapshot();
        assert_eq!(&snap[10_000..], b"tail");
        assert!(snap[..10_000].iter().all(|&b| b == 0));
    }

    #[test]
    fn large_transfer_spreads_across_segments() {
        let (f, _mem) = os_over_mem(Vec::new());
        let data = pattern((4 << 20) + 4096 + 123, 9);
        f.write_at(0, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        assert_eq!(f.read_at(0, &mut back).unwrap(), data.len());
        assert_eq!(back, data);
    }

    #[test]
    fn completion_reorder_under_shuffle_is_invisible_to_the_facade() {
        // A single shuffled worker completes the batch out of order; the
        // facade must still assemble the POSIX result.
        let mem = Arc::new(MemFile::with_data(pattern(1 << 16, 3)));
        let f = OsFile::over_arc(
            Arc::clone(&mem) as Arc<dyn StorageFile>,
            OsConfig {
                queue: QueueConfig {
                    workers: 1,
                    depth: 64,
                    shuffle_seed: Some(0x5C03_2003),
                },
                align: 4096,
                max_seg: 8192, // many segments per call
            },
        );
        let mut buf = vec![0u8; 40_000];
        assert_eq!(f.read_at(123, &mut buf).unwrap(), 40_000);
        assert_eq!(&buf[..], &pattern(1 << 16, 3)[123..123 + 40_000]);
        let data = pattern(40_000, 11);
        f.write_at(321, &data).unwrap();
        let snap = mem.snapshot();
        assert_eq!(&snap[321..321 + 40_000], &data[..]);
    }

    #[test]
    fn real_file_roundtrip_and_sync() {
        let f = OsFile::temp().expect("temp file");
        let data = pattern(100_000, 77);
        assert_eq!(f.write_at(4095, &data).unwrap(), data.len());
        f.sync().unwrap();
        assert_eq!(f.len(), 4095 + data.len() as u64);
        let mut back = vec![0u8; data.len()];
        assert_eq!(f.read_at(4095, &mut back).unwrap(), data.len());
        assert_eq!(back, data);
        f.set_len(10).unwrap();
        assert_eq!(f.len(), 10);
    }

    #[test]
    fn submission_seam_is_exposed() {
        let (f, _mem) = os_over_mem(Vec::new());
        assert!(f.submission().is_some());
        let as_dyn: Arc<dyn StorageFile> = Arc::new(f);
        assert!(as_dyn.submission().is_some(), "Arc must forward the seam");
        // ...and plain files must not claim one
        assert!(MemFile::new().submission().is_none());
    }
}
