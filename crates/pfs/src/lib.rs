//! # lio-pfs — the storage substrate
//!
//! The paper's testbed is the local file system of NEC SX-6/SX-7 nodes
//! (6.5 GB/s writes, 8 GB/s reads). This crate provides the stand-in:
//!
//! * [`StorageFile`] — the positional-I/O trait the MPI-IO layer is
//!   written against;
//! * [`MemFile`] — a thread-safe in-memory file whose transfer rate is
//!   memcpy bandwidth (the "fast file system" regime where listless I/O
//!   matters most), plus [`UnixFile`] for real on-disk output;
//! * [`ThrottledFile`] — a calibrated bandwidth/latency model for
//!   emulating slower storage ([`Throttle::sx6_local_fs`],
//!   [`Throttle::commodity_nfs`]);
//! * [`CountingFile`] — access/byte counters for the overhead ablations;
//! * [`FaultyFile`] — seeded deterministic fault injection (short
//!   transfers, transient errors, torn writes, flush failures), with the
//!   bounded recovery loops in [`retry`];
//! * [`OsFile`] — the real-storage backend: an asynchronous
//!   [`SubmissionQueue`]/completion-queue pair (io_uring-shaped; see
//!   [`squeue`]) served by a worker threadpool over any device, with
//!   alignment-aware segment planning and staged buffers ([`aligned`]);
//! * [`RangeLock`] — the byte-range lock that data-sieving writes need for
//!   their read-modify-write cycle;
//! * [`StripedFile`] — RAID-0-style striping over several backends, the
//!   "suitable striping configuration" of the paper's Figure 8
//!   discussion.

pub mod aligned;
pub mod decorate;
pub mod file;
pub mod lock;
pub mod os;
pub mod retry;
pub mod squeue;
pub mod stripe;

pub use aligned::{AlignedBuf, AlignedPool};
pub use decorate::{
    take_spin_ns, CountingFile, FaultPlan, FaultyFile, IoStats, Throttle, ThrottledFile,
};
pub use file::{MemFile, StorageFile, UnixFile};
pub use lock::{RangeGuard, RangeLock};
pub use os::{OsConfig, OsFile};
pub use retry::{RetryExhausted, RetryPolicy};
pub use squeue::{Cqe, QueueConfig, SqBuf, Sqe, SubmissionQueue};
pub use stripe::StripedFile;
