//! Striped storage: a RAID-0-style file over several backends.
//!
//! The paper's Figure 8 discussion notes that parallel file access "may
//! increase the accumulated bandwidth if the file system is using a
//! storage system with a suitable striping configuration". `StripedFile`
//! models that configuration: the byte space is cut into `stripe_size`
//! stripes dealt round-robin over the member files, so concurrent
//! accesses to different stripes can proceed on different members (each
//! member keeps its own interior lock).

use std::io;

use crate::file::StorageFile;

/// A file striped round-robin over several member files.
pub struct StripedFile<F> {
    members: Vec<F>,
    stripe_size: u64,
}

impl<F: StorageFile> StripedFile<F> {
    /// Stripe over `members` with the given stripe size in bytes.
    pub fn new(members: Vec<F>, stripe_size: u64) -> StripedFile<F> {
        assert!(!members.is_empty(), "need at least one member");
        assert!(stripe_size > 0, "stripe size must be positive");
        StripedFile {
            members,
            stripe_size,
        }
    }

    /// Number of member files.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// The members (for inspection in tests).
    pub fn members(&self) -> &[F] {
        &self.members
    }

    /// Map a global offset to (member, member-local offset, bytes left in
    /// this stripe).
    fn locate(&self, offset: u64) -> (usize, u64, u64) {
        let ss = self.stripe_size;
        let w = self.members.len() as u64;
        let stripe = offset / ss;
        let within = offset % ss;
        let member = (stripe % w) as usize;
        // local offset: full local stripes before this one, plus `within`
        let local = (stripe / w) * ss + within;
        (member, local, ss - within)
    }
}

impl<F: StorageFile> StorageFile for StripedFile<F> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let mut done = 0usize;
        while done < buf.len() {
            let (m, local, left) = self.locate(offset + done as u64);
            let n = (buf.len() - done).min(left as usize);
            let got = self.members[m].read_at(local, &mut buf[done..done + n])?;
            done += got;
            if got < n {
                break; // EOF on this member
            }
        }
        Ok(done)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> io::Result<usize> {
        let mut done = 0usize;
        while done < buf.len() {
            let (m, local, left) = self.locate(offset + done as u64);
            let n = (buf.len() - done).min(left as usize);
            let put = self.members[m].write_at(local, &buf[done..done + n])?;
            done += put;
            if put < n {
                break;
            }
        }
        Ok(done)
    }

    fn len(&self) -> u64 {
        // the logical length is bounded by the member that ends first in
        // round-robin order; compute the maximum consistent global length
        let ss = self.stripe_size;
        let w = self.members.len() as u64;
        let mut best = 0u64;
        for (i, f) in self.members.iter().enumerate() {
            let l = f.len();
            // member i holds local stripes k*ss..; local length l means
            // full stripes = l / ss (+ partial). Its last byte maps to the
            // global position:
            let full = l / ss;
            let partial = l % ss;
            let global_end = if partial > 0 {
                (full * w + i as u64) * ss + partial
            } else if full > 0 {
                ((full - 1) * w + i as u64) * ss + ss
            } else {
                0
            };
            best = best.max(global_end);
        }
        best
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        // distribute the logical length across members
        let ss = self.stripe_size;
        let w = self.members.len() as u64;
        for (i, f) in self.members.iter().enumerate() {
            let i = i as u64;
            // count whole/partial stripes member i holds below `len`
            let full_stripes = len / ss;
            let rem = len % ss;
            let mine_full = full_stripes / w + u64::from(full_stripes % w > i);
            let mut local = mine_full * ss;
            if full_stripes % w == i {
                local += rem;
            }
            f.set_len(local)?;
        }
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        for f in &self.members {
            f.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemFile;

    fn striped(w: usize, ss: u64) -> StripedFile<MemFile> {
        StripedFile::new((0..w).map(|_| MemFile::new()).collect(), ss)
    }

    #[test]
    fn roundtrip_across_stripes() {
        let f = striped(3, 8);
        let data: Vec<u8> = (0..100).collect();
        assert_eq!(f.write_at(0, &data).unwrap(), 100);
        let mut back = vec![0u8; 100];
        assert_eq!(f.read_at(0, &mut back).unwrap(), 100);
        assert_eq!(back, data);
    }

    #[test]
    fn stripes_land_on_members_round_robin() {
        let f = striped(2, 4);
        f.write_at(0, &[1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3])
            .unwrap();
        // stripe 0 -> member 0, stripe 1 -> member 1, stripe 2 -> member 0
        let m0 = f.members()[0].snapshot();
        let m1 = f.members()[1].snapshot();
        assert_eq!(m0, vec![1, 1, 1, 1, 3, 3, 3, 3]);
        assert_eq!(m1, vec![2, 2, 2, 2]);
    }

    #[test]
    fn unaligned_reads_and_writes() {
        let f = striped(3, 5);
        let data: Vec<u8> = (0..64).collect();
        f.write_at(7, &data).unwrap();
        let mut back = vec![0u8; 64];
        f.read_at(7, &mut back).unwrap();
        assert_eq!(back, data);
        // bytes before the write read as zero
        let mut head = vec![9u8; 7];
        f.read_at(0, &mut head).unwrap();
        assert_eq!(head, vec![0u8; 7]);
    }

    #[test]
    fn len_accounts_for_round_robin() {
        let f = striped(2, 4);
        assert_eq!(f.len(), 0);
        f.write_at(0, &[0; 10]).unwrap(); // stripes 0,1 full, stripe 2 partial
        assert_eq!(f.len(), 10);
        f.write_at(17, &[1]).unwrap();
        assert_eq!(f.len(), 18);
    }

    #[test]
    fn set_len_roundtrips() {
        for len in [0u64, 1, 4, 7, 8, 9, 16, 23] {
            let f = striped(2, 4);
            f.set_len(len).unwrap();
            assert_eq!(f.len(), len, "len {len}");
        }
    }

    #[test]
    fn width_one_is_plain_file() {
        let f = striped(1, 16);
        let data: Vec<u8> = (0..40).collect();
        f.write_at(3, &data).unwrap();
        assert_eq!(f.members()[0].snapshot().len(), 43);
        assert_eq!(f.len(), 43);
    }

    #[test]
    fn large_unaligned_transfer() {
        let f = striped(4, 64);
        let data = vec![7u8; 1000];
        f.write_at(100, &data).unwrap();
        let mut back = vec![0u8; 1000];
        f.read_at(100, &mut back).unwrap();
        assert_eq!(back, data);
        f.sync().unwrap();
    }

    #[test]
    fn concurrent_disjoint_stripe_writes() {
        use std::sync::Arc;
        let f = Arc::new(striped(4, 16));
        f.set_len(16 * 16).unwrap();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let f = Arc::clone(&f);
                s.spawn(move || {
                    // each thread writes its own stripes (t, t+4, t+8, ...)
                    for k in (t..16).step_by(4) {
                        let buf = vec![t as u8 + 1; 16];
                        f.write_at(k as u64 * 16, &buf).unwrap();
                    }
                });
            }
        });
        let mut all = vec![0u8; 256];
        f.read_at(0, &mut all).unwrap();
        for (k, stripe) in all.chunks(16).enumerate() {
            let owner = (k % 4) as u8 + 1;
            assert!(stripe.iter().all(|&b| b == owner), "stripe {k}");
        }
    }
}
