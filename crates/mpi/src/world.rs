//! Spawning a world of ranks.

use std::sync::atomic::AtomicU64;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use crate::comm::{Comm, Message, WorldCounters};

/// Factory for rank worlds.
pub struct World;

impl World {
    /// Run `f` on `nprocs` ranks (one thread each) and collect the return
    /// values in rank order. Panics in any rank propagate.
    ///
    /// # Example
    ///
    /// ```
    /// use lio_mpi::World;
    ///
    /// let sums = World::run(4, |comm| {
    ///     comm.allreduce_u64(comm.rank() as u64 + 1, |a, b| a + b)
    /// });
    /// assert_eq!(sums, vec![10, 10, 10, 10]);
    /// ```
    pub fn run<F, R>(nprocs: usize, f: F) -> Vec<R>
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        assert!(nprocs > 0, "a world needs at least one rank");
        let comms = Self::make_comms(nprocs);
        let f = &f;
        let mut results: Vec<Option<R>> = (0..nprocs).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    s.spawn(move || {
                        // claim this thread's trace buffer and health
                        // heartbeat slot before user code can open
                        // spans or send messages
                        lio_obs::trace::set_thread_rank(comm.rank() as u32);
                        lio_obs::health::set_thread_rank(comm.rank() as u32);
                        f(&comm)
                    })
                })
                .collect();
            for (slot, h) in results.iter_mut().zip(handles) {
                match h.join() {
                    Ok(r) => *slot = Some(r),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("all ranks joined"))
            .collect()
    }

    /// Build the communicator endpoints without spawning threads (for
    /// callers that manage their own threads).
    pub fn make_comms(nprocs: usize) -> Vec<Comm> {
        let counters = Arc::new(WorldCounters {
            msgs: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
        });
        // channel[p][q]: p -> q
        let mut txs: Vec<Vec<Option<Sender<Message>>>> = (0..nprocs)
            .map(|_| (0..nprocs).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<Message>>>> = (0..nprocs)
            .map(|_| (0..nprocs).map(|_| None).collect())
            .collect();
        for p in 0..nprocs {
            for q in 0..nprocs {
                let (tx, rx) = channel();
                txs[p][q] = Some(tx);
                rxs[p][q] = Some(rx);
            }
        }
        (0..nprocs)
            .map(|p| {
                let senders = (0..nprocs)
                    .map(|q| txs[p][q].take().expect("sender taken once"))
                    .collect();
                let receivers = (0..nprocs)
                    .map(|q| rxs[q][p].take().expect("receiver taken once"))
                    .collect();
                Comm::new(p, nprocs, senders, receivers, Arc::clone(&counters))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let r = World::run(1, |comm| comm.rank() + comm.size());
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn results_in_rank_order() {
        let r = World::run(8, |comm| comm.rank() * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        World::run(0, |_| ());
    }
}
