//! # lio-mpi — an in-process message-passing substrate
//!
//! The paper's two-phase collective I/O moves data *and metadata* between
//! MPI processes; the list-based engine's defining cost is the ol-list
//! exchange. To reproduce those effects without an MPI installation (Rust
//! MPI bindings expose neither datatype internals nor an MPI-IO layer),
//! this crate provides a small, faithful message-passing world:
//!
//! * ranks are threads ([`World::run`]); each owns a [`Comm`] endpoint;
//! * point-to-point messages carry real payloads through per-pair
//!   channels with MPI-style `(source, tag)` matching, so communication
//!   volume is physically realized and counted ([`Comm::stats`]);
//! * collectives (barrier, bcast, gather, allgather, alltoall, allreduce)
//!   are built on point-to-point, as in an MPI library;
//! * a deterministic fault injector ([`CommFaultPlan`]) perturbs delivery
//!   (duplicates, delays, `wait_any` completion order) without violating
//!   the semantics correct programs rely on.
//!
//! Shared-memory transport stands in for the SX crossbar; see DESIGN.md
//! for the substitution argument.

pub mod coll;
pub mod comm;
pub mod fault;
pub mod world;

pub use comm::{Comm, CommStats, Request, ANY_SOURCE};
pub use fault::{CommFaultPlan, CommFaultStats};
pub use world::World;
