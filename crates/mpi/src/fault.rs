//! Deterministic communication-fault injection.
//!
//! A [`CommFaultPlan`] perturbs one rank's endpoint under the existing
//! blocking and nonblocking APIs without ever violating MPI semantics
//! visible to correct programs:
//!
//! * **duplicate deliveries** — a sent message is transmitted twice; the
//!   always-on per-channel sequence numbers make the receiver drop the
//!   extra copy, so exactly-once delivery holds *by mechanism*, and the
//!   injector proves it;
//! * **delayed deliveries** — on any-source paths (`recv_any`,
//!   `wait_any`), a source's channel is skipped for a bounded number of
//!   polls, reshuffling cross-source arrival interleavings while
//!   preserving per-(source, tag) FIFO order;
//! * **completion reorder** — `wait_any` scans its request array from a
//!   seeded rotating start, so which of several satisfiable requests
//!   completes first is adversarially permuted.
//!
//! Decisions come from a seeded xorshift64* stream (the same generator
//! family as the storage `FaultPlan` corpora in `lio-pfs`), so any
//! failing interleaving is replayed by its seed alone.

use lio_obs::LazyCounter;

static OBS_DUPS: LazyCounter = LazyCounter::new("mpi.fault.dups");
static OBS_DELAYS: LazyCounter = LazyCounter::new("mpi.fault.delays");

/// Deterministic fault plan for one rank's [`crate::Comm`] endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommFaultPlan {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Probability (out of 256) that a sent message is delivered twice.
    pub dup_per_256: u8,
    /// Probability (out of 256) that an any-source poll of a given
    /// source is deferred.
    pub lag_per_256: u8,
    /// Upper bound on how many consecutive polls one deferral skips.
    pub max_lag_polls: u8,
    /// Perturb the `wait_any` scan order with a seeded rotation.
    pub reorder_scan: bool,
}

impl CommFaultPlan {
    /// No perturbation at all.
    pub fn disabled() -> CommFaultPlan {
        CommFaultPlan {
            seed: 0,
            dup_per_256: 0,
            lag_per_256: 0,
            max_lag_polls: 0,
            reorder_scan: false,
        }
    }

    /// Moderate defaults: roughly one message in five duplicated, one
    /// any-source poll in five deferred for up to three polls, and
    /// `wait_any` scan order rotated.
    pub fn seeded(seed: u64) -> CommFaultPlan {
        CommFaultPlan {
            seed,
            dup_per_256: 48,
            lag_per_256: 48,
            max_lag_polls: 3,
            reorder_scan: true,
        }
    }

    /// Whether this plan can perturb anything at all.
    pub fn is_active(&self) -> bool {
        self.dup_per_256 > 0
            || (self.lag_per_256 > 0 && self.max_lag_polls > 0)
            || self.reorder_scan
    }
}

/// What one endpoint's injector has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommFaultStats {
    /// Messages this rank sent twice.
    pub dups_injected: u64,
    /// Duplicate copies this rank received and discarded.
    pub dups_dropped: u64,
    /// Any-source polls this rank deferred.
    pub delays_injected: u64,
}

/// Live injection state behind a [`crate::Comm`] (one per endpoint).
pub(crate) struct FaultState {
    plan: CommFaultPlan,
    rng: u64,
    /// Remaining polls to skip, per source, on any-source paths.
    lag: Vec<u32>,
    pub(crate) stats: CommFaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: CommFaultPlan, size: usize) -> FaultState {
        FaultState {
            plan,
            rng: plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            lag: vec![0; size],
            stats: CommFaultStats::default(),
        }
    }

    fn roll(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Should the message being sent right now be delivered twice?
    pub(crate) fn dup_send(&mut self) -> bool {
        if self.plan.dup_per_256 == 0 {
            return false;
        }
        let hit = (self.roll() & 0xFF) < self.plan.dup_per_256 as u64;
        if hit {
            self.stats.dups_injected += 1;
            OBS_DUPS.incr();
        }
        hit
    }

    /// Should this any-source poll skip `src`'s channel? Deferrals are
    /// counted down per sweep, so they are always bounded — a lagged
    /// source becomes pollable again after at most `max_lag_polls`
    /// sweeps and no deadlock is possible.
    pub(crate) fn defer_poll(&mut self, src: usize) -> bool {
        if self.lag[src] > 0 {
            self.lag[src] -= 1;
            return true;
        }
        if self.plan.lag_per_256 == 0 || self.plan.max_lag_polls == 0 {
            return false;
        }
        let r = self.roll();
        if (r & 0xFF) < self.plan.lag_per_256 as u64 {
            self.lag[src] = 1 + ((r >> 8) % self.plan.max_lag_polls as u64) as u32;
            self.stats.delays_injected += 1;
            OBS_DELAYS.incr();
            return true;
        }
        false
    }

    /// Seeded start offset for a `wait_any` scan over `n` requests.
    pub(crate) fn scan_start(&mut self, n: usize) -> usize {
        if self.plan.reorder_scan && n > 1 {
            (self.roll() as usize) % n
        } else {
            0
        }
    }

    pub(crate) fn note_dup_dropped(&mut self) {
        self.stats.dups_dropped += 1;
    }
}
