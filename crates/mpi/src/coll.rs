//! Collective operations, built on point-to-point messaging so that their
//! communication volume is physically realized.

use crate::comm::Comm;

impl Comm {
    /// Block until every rank has entered the barrier (dissemination
    /// algorithm, `⌈log₂ P⌉` rounds).
    pub fn barrier(&self) {
        let tag = self.next_coll_tag();
        let p = self.size();
        if p == 1 {
            return;
        }
        // A rank parked here is waiting on peers, not stuck itself —
        // the watchdog treats `barrier` as a wait phase.
        lio_obs::health::beat(lio_obs::health::HbPhase::Barrier);
        let me = self.rank();
        let mut dist = 1;
        let mut round = 0;
        while dist < p {
            let dst = (me + dist) % p;
            let src = (me + p - dist % p) % p;
            self.send_coll(dst, tag + round, Vec::new());
            self.recv_raw(src, tag + round);
            dist *= 2;
            round += 1;
        }
    }

    /// Broadcast `data` from `root` to every rank; returns the payload on
    /// all ranks (binomial tree).
    pub fn bcast(&self, root: usize, data: Option<Vec<u8>>) -> Vec<u8> {
        let tag = self.next_coll_tag();
        let p = self.size();
        let me = self.rank();
        let vrank = (me + p - root) % p; // root becomes virtual rank 0
        let payload = if me == root {
            data.expect("root must supply the broadcast payload")
        } else {
            // receive from the virtual parent
            let mask = {
                let mut m = 1;
                while m <= vrank {
                    m <<= 1;
                }
                m >> 1
            };
            let vparent = vrank - mask;
            let parent = (vparent + root) % p;
            self.recv_raw(parent, tag)
        };
        // forward to virtual children
        let mut mask = 1;
        while mask <= vrank {
            mask <<= 1;
        }
        while mask < p {
            let vchild = vrank + mask;
            if vchild < p {
                let child = (vchild + root) % p;
                self.send_coll(child, tag, payload.clone());
            }
            mask <<= 1;
        }
        payload
    }

    /// Gather each rank's `data` at `root`; returns `Some(vec-by-rank)` at
    /// the root, `None` elsewhere.
    pub fn gather(&self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let tag = self.next_coll_tag();
        let me = self.rank();
        if me == root {
            let mut out: Vec<Vec<u8>> = (0..self.size()).map(|_| Vec::new()).collect();
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_raw(src, tag);
                }
            }
            Some(out)
        } else {
            self.send_coll(root, tag, data);
            None
        }
    }

    /// Gather every rank's `data` everywhere (gather at 0, then bcast of
    /// the concatenation with a length prefix).
    pub fn allgather(&self, data: Vec<u8>) -> Vec<Vec<u8>> {
        let gathered = self.gather(0, data);
        let packed = if self.rank() == 0 {
            let parts = gathered.expect("rank 0 gathers");
            let mut buf = Vec::new();
            buf.extend_from_slice(&(parts.len() as u64).to_le_bytes());
            for p in &parts {
                buf.extend_from_slice(&(p.len() as u64).to_le_bytes());
            }
            for p in &parts {
                buf.extend_from_slice(p);
            }
            Some(buf)
        } else {
            None
        };
        let buf = self.bcast(0, packed);
        let n = u64::from_le_bytes(buf[0..8].try_into().expect("length prefix")) as usize;
        let mut lens = Vec::with_capacity(n);
        for i in 0..n {
            let o = 8 + i * 8;
            lens.push(u64::from_le_bytes(buf[o..o + 8].try_into().expect("length")) as usize);
        }
        let mut out = Vec::with_capacity(n);
        let mut pos = 8 + n * 8;
        for len in lens {
            out.push(buf[pos..pos + len].to_vec());
            pos += len;
        }
        out
    }

    /// Personalized all-to-all: `send[q]` goes to rank q; returns the
    /// vector received from each rank. `send.len()` must equal the world
    /// size; `send[rank]` is returned unchanged in place.
    pub fn alltoall(&self, mut send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(send.len(), self.size(), "one payload per destination");
        let tag = self.next_coll_tag();
        let me = self.rank();
        let p = self.size();
        let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        out[me] = std::mem::take(&mut send[me]);
        // send in a rank-rotated order to avoid hot spots
        for k in 1..p {
            let dst = (me + k) % p;
            self.send_coll(dst, tag, std::mem::take(&mut send[dst]));
        }
        for k in 1..p {
            let src = (me + p - k) % p;
            out[src] = self.recv_raw(src, tag);
        }
        out
    }

    /// All-reduce a `u64` with an associative, commutative operator.
    pub fn allreduce_u64(&self, value: u64, op: fn(u64, u64) -> u64) -> u64 {
        let gathered = self.gather(0, value.to_le_bytes().to_vec());
        let reduced = if self.rank() == 0 {
            let parts = gathered.expect("rank 0 gathers");
            let acc = parts
                .iter()
                .map(|b| u64::from_le_bytes(b[..8].try_into().expect("u64")))
                .reduce(op)
                .expect("at least one rank");
            Some(acc.to_le_bytes().to_vec())
        } else {
            None
        };
        let buf = self.bcast(0, reduced);
        u64::from_le_bytes(buf[..8].try_into().expect("u64"))
    }

    /// All-reduce an `f64` with an associative, commutative operator.
    pub fn allreduce_f64(&self, value: f64, op: fn(f64, f64) -> f64) -> f64 {
        let gathered = self.gather(0, value.to_le_bytes().to_vec());
        let reduced = if self.rank() == 0 {
            let parts = gathered.expect("rank 0 gathers");
            let acc = parts
                .iter()
                .map(|b| f64::from_le_bytes(b[..8].try_into().expect("f64")))
                .reduce(op)
                .expect("at least one rank");
            Some(acc.to_le_bytes().to_vec())
        } else {
            None
        };
        let buf = self.bcast(0, reduced);
        f64::from_le_bytes(buf[..8].try_into().expect("f64"))
    }

    /// Maximum over all ranks (convenience).
    pub fn allmax_f64(&self, value: f64) -> f64 {
        self.allreduce_f64(value, f64::max)
    }

    /// Sum over all ranks (convenience).
    pub fn allsum_u64(&self, value: u64) -> u64 {
        self.allreduce_u64(value, |a, b| a.wrapping_add(b))
    }
}

#[cfg(test)]
mod tests {
    use crate::World;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_synchronizes() {
        // Every rank increments before the barrier; after it, all must see
        // the full count.
        let before = AtomicUsize::new(0);
        World::run(8, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(before.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn barrier_many_rounds() {
        World::run(5, |comm| {
            for _ in 0..50 {
                comm.barrier();
            }
        });
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..5 {
            World::run(5, move |comm| {
                let data = if comm.rank() == root {
                    Some(vec![root as u8; 17])
                } else {
                    None
                };
                let got = comm.bcast(root, data);
                assert_eq!(got, vec![root as u8; 17]);
            });
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        World::run(6, |comm| {
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let gathered = comm.gather(2, mine);
            if comm.rank() == 2 {
                let parts = gathered.unwrap();
                for (r, p) in parts.iter().enumerate() {
                    assert_eq!(p, &vec![r as u8; r + 1]);
                }
            } else {
                assert!(gathered.is_none());
            }
        });
    }

    #[test]
    fn allgather_everywhere() {
        World::run(4, |comm| {
            let parts = comm.allgather(vec![comm.rank() as u8 * 3]);
            assert_eq!(parts.len(), 4);
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![r as u8 * 3]);
            }
        });
    }

    #[test]
    fn alltoall_personalized() {
        World::run(4, |comm| {
            let me = comm.rank();
            let send: Vec<Vec<u8>> = (0..4).map(|q| vec![me as u8, q as u8]).collect();
            let recv = comm.alltoall(send);
            for (src, m) in recv.iter().enumerate() {
                assert_eq!(m, &vec![src as u8, me as u8]);
            }
        });
    }

    #[test]
    fn alltoall_empty_payloads() {
        World::run(3, |comm| {
            let send: Vec<Vec<u8>> = (0..3).map(|_| Vec::new()).collect();
            let recv = comm.alltoall(send);
            assert!(recv.iter().all(|m| m.is_empty()));
        });
    }

    #[test]
    fn allreduce_sum_and_max() {
        World::run(7, |comm| {
            let sum = comm.allsum_u64(comm.rank() as u64);
            assert_eq!(sum, 21);
            let max = comm.allmax_f64(comm.rank() as f64 * 1.5);
            assert_eq!(max, 9.0);
        });
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        World::run(4, |comm| {
            let me = comm.rank();
            if me == 0 {
                comm.send(1, 9, b"x");
            }
            comm.barrier();
            if me == 1 {
                assert_eq!(comm.recv(0, 9), b"x");
            }
            let s = comm.allsum_u64(1);
            assert_eq!(s, 4);
        });
    }

    #[test]
    fn single_rank_collectives() {
        World::run(1, |comm| {
            comm.barrier();
            assert_eq!(comm.bcast(0, Some(vec![1, 2])), vec![1, 2]);
            assert_eq!(comm.allsum_u64(5), 5);
            let a2a = comm.alltoall(vec![vec![9]]);
            assert_eq!(a2a, vec![vec![9]]);
        });
    }
}
