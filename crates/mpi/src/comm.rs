//! Communicators and point-to-point messaging.
//!
//! Ranks are threads; transport is an mpsc channel per ordered rank
//! pair. Messages physically move through the channels (the ol-lists of
//! the list-based engine are really serialized and sent), so communication
//! *volume* — the quantity the paper's two-phase analysis hinges on — is
//! faithfully represented, with shared-memory transport standing in for
//! the SX's internode crossbar.
//!
//! Besides blocking `send`/`recv`, the communicator offers nonblocking
//! operations ([`Comm::isend`], [`Comm::irecv`]) returning [`Request`]
//! handles completed by [`Comm::wait`], [`Comm::test`] or
//! [`Comm::wait_any`] — the primitives the pipelined two-phase engine
//! uses to complete receives in arrival order instead of rank order.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use lio_obs::{LazyCounter, LazyHistogram};

use crate::fault::{CommFaultPlan, CommFaultStats, FaultState};

/// Point-to-point traffic (user sends), distinguished from collective
/// traffic so the ol-list metadata exchanged inside two-phase collectives
/// is directly observable against the data it moves.
static OBS_P2P_MSGS: LazyCounter = LazyCounter::new("mpi.p2p.msgs");
static OBS_P2P_BYTES: LazyCounter = LazyCounter::new("mpi.p2p.bytes");
static OBS_COLL_MSGS: LazyCounter = LazyCounter::new("mpi.coll.msgs");
static OBS_COLL_BYTES: LazyCounter = LazyCounter::new("mpi.coll.bytes");
static OBS_MSG_SIZE: LazyHistogram = LazyHistogram::new("mpi.msg.size");

/// Wildcard source for [`Comm::recv_any`].
pub const ANY_SOURCE: usize = usize::MAX;

/// Tag space reserved for collective operations; user tags must be below.
const COLL_TAG_BASE: u64 = 1 << 32;

/// How many mismatched messages one probing sweep will drain from a
/// single source's channel before moving on. This bounds how much a
/// peer flooding one tag can grow the pending stash (and starve other
/// sources) per receive call; without a budget, a probe would drain an
/// entire flood into `pending` before even looking at the next source.
const DRAIN_BUDGET: usize = 32;

/// A message in flight.
///
/// `seq` numbers each (src → dst) channel's messages from 1, always on:
/// it is what lets a receiver discard injected duplicate deliveries (see
/// [`crate::fault`]) without any protocol cooperation — exactly-once
/// delivery is a property of the endpoint, not of the fault plan.
#[derive(Debug)]
pub(crate) struct Message {
    pub src: usize,
    pub tag: u64,
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// Communication statistics for one rank.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub msgs_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
}

/// Shared per-world counters, indexed by rank.
pub(crate) struct WorldCounters {
    pub msgs: Vec<AtomicU64>,
    pub bytes: Vec<AtomicU64>,
}

/// A nonblocking operation handle, MPI-request style. Created by
/// [`Comm::isend`]/[`Comm::irecv`]; completed (and consumed) by exactly
/// one of [`Comm::wait`], [`Comm::test`] or [`Comm::wait_any`].
#[derive(Debug)]
pub struct Request {
    state: ReqState,
}

#[derive(Debug)]
enum ReqState {
    /// An eager send: transport buffers unboundedly, so the send
    /// completed at post time; the handle exists for MPI-shaped call
    /// sites.
    SendDone,
    /// A posted receive, not yet matched.
    Recv { src: usize, tag: u64 },
    /// Completed and consumed.
    Done,
}

impl Request {
    /// Whether the request has been consumed by `wait`/`test`/`wait_any`.
    pub fn is_done(&self) -> bool {
        matches!(self.state, ReqState::Done)
    }
}

/// One rank's endpoint of the communicator.
///
/// A `Comm` is owned by exactly one thread (it is `Send` but not `Sync`);
/// [`crate::World::run`] hands each spawned rank its own.
pub struct Comm {
    rank: usize,
    size: usize,
    /// senders[q] transmits to rank q.
    senders: Vec<Sender<Message>>,
    /// receivers[q] yields messages sent by rank q.
    receivers: Vec<Receiver<Message>>,
    /// Out-of-order messages already drained from a channel, stashed per
    /// (source, tag) so matching is a map lookup instead of a linear
    /// scan over everything a flooding peer has queued.
    pending: RefCell<Vec<BTreeMap<u64, VecDeque<Vec<u8>>>>>,
    /// Where the next `recv_any`/`try_recv_any` sweep starts, rotated on
    /// every match so one source cannot be favored structurally.
    rr_next: Cell<usize>,
    /// Sequence number disambiguating successive collective operations.
    coll_seq: RefCell<u64>,
    /// Next sequence number per destination channel (this rank → dst).
    send_seq: RefCell<Vec<u64>>,
    /// Highest sequence accepted per source channel (src → this rank);
    /// anything at or below it is a duplicate delivery and is dropped.
    recv_seq: RefCell<Vec<u64>>,
    /// Optional fault injector for this endpoint.
    fault: RefCell<Option<FaultState>>,
    counters: Arc<WorldCounters>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Message>>,
        receivers: Vec<Receiver<Message>>,
        counters: Arc<WorldCounters>,
    ) -> Comm {
        Comm {
            rank,
            size,
            senders,
            receivers,
            pending: RefCell::new((0..size).map(|_| BTreeMap::new()).collect()),
            rr_next: Cell::new(0),
            coll_seq: RefCell::new(0),
            send_seq: RefCell::new(vec![0; size]),
            recv_seq: RefCell::new(vec![0; size]),
            fault: RefCell::new(None),
            counters,
        }
    }

    /// Install (or clear) a deterministic fault plan on this endpoint.
    /// Affects only this rank's sends and any-source polls; correctness
    /// of a well-formed program must not depend on the plan.
    pub fn set_fault_plan(&self, plan: Option<CommFaultPlan>) {
        *self.fault.borrow_mut() = plan
            .filter(|p| p.is_active())
            .map(|p| FaultState::new(p, self.size));
    }

    /// What this endpoint's injector has done so far (zeroes if no plan
    /// is installed).
    pub fn fault_stats(&self) -> CommFaultStats {
        self.fault
            .borrow()
            .as_ref()
            .map(|f| f.stats)
            .unwrap_or_default()
    }

    /// This rank's index in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's communication statistics so far.
    pub fn stats(&self) -> CommStats {
        CommStats {
            msgs_sent: self.counters.msgs[self.rank].load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes[self.rank].load(Ordering::Relaxed),
        }
    }

    /// Aggregate statistics across all ranks.
    pub fn world_stats(&self) -> CommStats {
        let mut s = CommStats::default();
        for r in 0..self.size {
            s.msgs_sent += self.counters.msgs[r].load(Ordering::Relaxed);
            s.bytes_sent += self.counters.bytes[r].load(Ordering::Relaxed);
        }
        s
    }

    /// Messages currently parked in the out-of-order stash (receives
    /// posted for other (source, tag) pairs drained them from the
    /// channels). Exposed so tests can assert the stash stays bounded.
    pub fn stashed_msgs(&self) -> usize {
        self.pending
            .borrow()
            .iter()
            .map(|m| m.values().map(|q| q.len()).sum::<usize>())
            .sum()
    }

    // ----- point-to-point -------------------------------------------------

    /// Send `payload` to rank `dst` with a user `tag` (must be `< 2^32`).
    pub fn send(&self, dst: usize, tag: u64, payload: &[u8]) {
        debug_assert!(tag < COLL_TAG_BASE, "user tags must be below 2^32");
        self.send_vec(dst, tag, payload.to_vec());
    }

    /// Send an owned buffer, avoiding a copy.
    pub fn send_vec(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        debug_assert!(tag < COLL_TAG_BASE, "user tags must be below 2^32");
        OBS_P2P_MSGS.incr();
        OBS_P2P_BYTES.add(payload.len() as u64);
        self.send_raw(dst, tag, payload);
    }

    fn send_raw(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        assert!(dst < self.size, "destination rank {dst} out of range");
        OBS_MSG_SIZE.record(payload.len() as u64);
        self.counters.msgs[self.rank].fetch_add(1, Ordering::Relaxed);
        self.counters.bytes[self.rank].fetch_add(payload.len() as u64, Ordering::Relaxed);
        let seq = {
            let mut s = self.send_seq.borrow_mut();
            s[dst] += 1;
            s[dst]
        };
        // The per-channel sequence number doubles as the causal-edge key
        // for cross-rank trace merging (a duplicate delivery is one
        // logical message: one send event, and `accept` records the
        // receive only for the copy it keeps).
        lio_obs::trace::msg_send(dst as u32, seq, payload.len() as u64);
        lio_obs::profile::record_rank_exchange(self.rank as u32, payload.len() as u64);
        let dup = match self.fault.borrow_mut().as_mut() {
            Some(f) => f.dup_send(),
            None => false,
        };
        let mut delivered = false;
        if dup {
            // Duplicate delivery: transmit an identical copy first; the
            // receiver's sequence check discards whichever arrives second.
            delivered = self.senders[dst]
                .send(Message {
                    src: self.rank,
                    tag,
                    seq,
                    payload: payload.clone(),
                })
                .is_ok();
        }
        let sent = self.senders[dst].send(Message {
            src: self.rank,
            tag,
            seq,
            payload,
        });
        // A receiver that consumed the duplicate copy of its final message
        // may legitimately terminate before the original is transmitted;
        // the message was still delivered exactly once. Anything else is a
        // protocol violation by the program under test.
        assert!(
            sent.is_ok() || delivered,
            "receiver rank terminated with messages in flight"
        );
    }

    /// Sequence-check an incoming message: `true` to deliver, `false` if
    /// it is a duplicate delivery to discard.
    fn accept(&self, msg: &Message) -> bool {
        let mut seen = self.recv_seq.borrow_mut();
        if msg.seq <= seen[msg.src] {
            if let Some(f) = self.fault.borrow_mut().as_mut() {
                f.note_dup_dropped();
            }
            return false;
        }
        seen[msg.src] = msg.seq;
        lio_obs::trace::msg_recv(msg.src as u32, msg.seq, msg.payload.len() as u64);
        true
    }

    /// Whether an any-source poll should skip `src` this sweep (injected
    /// delivery delay; bounded, see [`crate::fault`]).
    fn poll_deferred(&self, src: usize) -> bool {
        match self.fault.borrow_mut().as_mut() {
            Some(f) => f.defer_poll(src),
            None => false,
        }
    }

    fn stash(&self, src: usize, tag: u64, payload: Vec<u8>) {
        self.pending.borrow_mut()[src]
            .entry(tag)
            .or_default()
            .push_back(payload);
    }

    fn unstash(&self, src: usize, tag: u64) -> Option<Vec<u8>> {
        let mut pending = self.pending.borrow_mut();
        let map = &mut pending[src];
        let q = map.get_mut(&tag)?;
        let p = q.pop_front()?;
        if q.is_empty() {
            map.remove(&tag);
        }
        Some(p)
    }

    /// Receive the next message from `src` carrying `tag` (blocking,
    /// in-order per (src, tag) as in MPI).
    pub fn recv(&self, src: usize, tag: u64) -> Vec<u8> {
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw(&self, src: usize, tag: u64) -> Vec<u8> {
        assert!(src < self.size, "source rank {src} out of range");
        if let Some(p) = self.unstash(src, tag) {
            return p;
        }
        // drain the channel until the tag appears
        loop {
            let msg = self.receivers[src]
                .recv()
                .expect("sender rank terminated while a receive was posted");
            debug_assert_eq!(msg.src, src, "message arrived on the wrong channel");
            if !self.accept(&msg) {
                continue;
            }
            if msg.tag == tag {
                return msg.payload;
            }
            self.stash(src, msg.tag, msg.payload);
        }
    }

    /// Nonblocking receive attempt from a specific source.
    fn try_recv_from(&self, src: usize, tag: u64) -> Option<Vec<u8>> {
        if let Some(p) = self.unstash(src, tag) {
            return Some(p);
        }
        for _ in 0..DRAIN_BUDGET {
            match self.receivers[src].try_recv() {
                Ok(msg) => {
                    if !self.accept(&msg) {
                        continue;
                    }
                    if msg.tag == tag {
                        return Some(msg.payload);
                    }
                    self.stash(src, msg.tag, msg.payload);
                }
                Err(_) => break,
            }
        }
        None
    }

    /// Receive the next message with `tag` from any source; returns
    /// `(src, payload)`. Sources are polled fairly: sweeps start at a
    /// rotating offset and drain at most [`DRAIN_BUDGET`] mismatched
    /// messages per source before moving on, so a peer flooding another
    /// tag can neither starve the others nor balloon the stash.
    pub fn recv_any(&self, tag: u64) -> (usize, Vec<u8>) {
        loop {
            if let Some(r) = self.try_recv_any(tag) {
                return r;
            }
            std::thread::yield_now();
        }
    }

    /// Nonblocking [`Comm::recv_any`]: one fair sweep over stash and
    /// channels; `None` when no matching message has arrived yet.
    pub fn try_recv_any(&self, tag: u64) -> Option<(usize, Vec<u8>)> {
        let start = self.rr_next.get();
        for k in 0..self.size {
            let src = (start + k) % self.size;
            if let Some(p) = self.unstash(src, tag) {
                self.rr_next.set((src + 1) % self.size);
                return Some((src, p));
            }
        }
        for k in 0..self.size {
            let src = (start + k) % self.size;
            if self.poll_deferred(src) {
                continue;
            }
            for _ in 0..DRAIN_BUDGET {
                match self.receivers[src].try_recv() {
                    Ok(msg) => {
                        if !self.accept(&msg) {
                            continue;
                        }
                        if msg.tag == tag {
                            self.rr_next.set((src + 1) % self.size);
                            return Some((src, msg.payload));
                        }
                        self.stash(src, msg.tag, msg.payload);
                    }
                    Err(_) => break,
                }
            }
        }
        None
    }

    // ----- nonblocking requests ------------------------------------------

    /// Nonblocking send. Transport is buffered, so the send completes
    /// eagerly; the returned request must still be completed with
    /// `wait`/`test`/`wait_any` (MPI shape).
    pub fn isend(&self, dst: usize, tag: u64, payload: Vec<u8>) -> Request {
        self.send_vec(dst, tag, payload);
        Request {
            state: ReqState::SendDone,
        }
    }

    /// Post a nonblocking receive for `(src, tag)`.
    pub fn irecv(&self, src: usize, tag: u64) -> Request {
        assert!(src < self.size, "source rank {src} out of range");
        Request {
            state: ReqState::Recv { src, tag },
        }
    }

    /// Block until `req` completes; returns `(src, payload)` (for a send
    /// request: `(self.rank(), empty)`). Panics on a consumed request.
    pub fn wait(&self, req: &mut Request) -> (usize, Vec<u8>) {
        match std::mem::replace(&mut req.state, ReqState::Done) {
            ReqState::SendDone => (self.rank, Vec::new()),
            ReqState::Recv { src, tag } => {
                let _sp = lio_obs::trace::span("mpi.wait");
                // One beat on entering the wait: a rank parked here is
                // a victim of whoever it waits on, and the aging
                // timestamp lets the watchdog see exactly that.
                lio_obs::health::beat(lio_obs::health::HbPhase::ExchangeWait);
                (src, self.recv_raw(src, tag))
            }
            ReqState::Done => panic!("wait on a completed request"),
        }
    }

    /// Complete `req` without blocking, if possible. Panics on a
    /// consumed request.
    pub fn test(&self, req: &mut Request) -> Option<(usize, Vec<u8>)> {
        match req.state {
            ReqState::SendDone => {
                req.state = ReqState::Done;
                Some((self.rank, Vec::new()))
            }
            ReqState::Recv { src, tag } => {
                let p = self.try_recv_from(src, tag)?;
                req.state = ReqState::Done;
                Some((src, p))
            }
            ReqState::Done => panic!("test on a completed request"),
        }
    }

    /// Block until *some* active request in `reqs` completes; returns
    /// `(index, src, payload)`. Completion follows arrival order across
    /// sources — no head-of-line blocking on low ranks. Consumed
    /// requests are skipped; panics if every request is consumed.
    pub fn wait_any(&self, reqs: &mut [Request]) -> (usize, usize, Vec<u8>) {
        assert!(
            reqs.iter().any(|r| !r.is_done()),
            "wait_any on no active requests"
        );
        let _sp = lio_obs::trace::span("mpi.wait");
        lio_obs::health::beat(lio_obs::health::HbPhase::ExchangeWait);
        loop {
            // An installed fault plan may rotate the scan start, so which
            // of several satisfiable requests completes first is
            // adversarially (but reproducibly) permuted.
            let start = match self.fault.borrow_mut().as_mut() {
                Some(f) => f.scan_start(reqs.len()),
                None => 0,
            };
            for k in 0..reqs.len() {
                let i = (start + k) % reqs.len();
                match reqs[i].state {
                    ReqState::SendDone => {
                        reqs[i].state = ReqState::Done;
                        return (i, self.rank, Vec::new());
                    }
                    ReqState::Recv { src, tag } => {
                        if let Some(p) = self.unstash(src, tag) {
                            reqs[i].state = ReqState::Done;
                            return (i, src, p);
                        }
                    }
                    ReqState::Done => {}
                }
            }
            // Nothing stashed matches: pull whatever has arrived into the
            // stash (budgeted per source), then rescan.
            let mut progressed = false;
            for src in 0..self.size {
                if self.poll_deferred(src) {
                    continue;
                }
                for _ in 0..DRAIN_BUDGET {
                    match self.receivers[src].try_recv() {
                        Ok(msg) => {
                            if !self.accept(&msg) {
                                continue;
                            }
                            progressed = true;
                            self.stash(src, msg.tag, msg.payload);
                        }
                        Err(_) => break,
                    }
                }
            }
            if !progressed {
                std::thread::yield_now();
            } else {
                // Messages arrived: real progress, refresh the heartbeat.
                lio_obs::health::beat(lio_obs::health::HbPhase::Exchange);
            }
        }
    }

    /// Next collective-operation tag; all ranks call collectives in the
    /// same order (an MPI requirement), so sequence numbers align.
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let mut seq = self.coll_seq.borrow_mut();
        *seq += 1;
        COLL_TAG_BASE + *seq * 16
    }

    pub(crate) fn send_coll(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        OBS_COLL_MSGS.incr();
        OBS_COLL_BYTES.add(payload.len() as u64);
        self.send_raw(dst, tag, payload);
    }
}

#[cfg(test)]
mod tests {
    use crate::World;

    #[test]
    fn rank_and_size() {
        let ranks = World::run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ping_pong() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"ping");
                assert_eq!(comm.recv(1, 8), b"pong");
            } else {
                assert_eq!(comm.recv(0, 7), b"ping");
                comm.send(0, 8, b"pong");
            }
        });
    }

    #[test]
    fn tag_matching_out_of_order() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"first");
                comm.send(1, 2, b"second");
            } else {
                // receive in reverse tag order
                assert_eq!(comm.recv(0, 2), b"second");
                assert_eq!(comm.recv(0, 1), b"first");
            }
        });
    }

    #[test]
    fn same_tag_preserves_order() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u8 {
                    comm.send(1, 3, &[i]);
                }
            } else {
                for i in 0..10u8 {
                    assert_eq!(comm.recv(0, 3), vec![i]);
                }
            }
        });
    }

    #[test]
    fn recv_any_collects_all() {
        World::run(4, |comm| {
            if comm.rank() == 0 {
                let mut seen = [false; 4];
                for _ in 0..3 {
                    let (src, payload) = comm.recv_any(5);
                    assert_eq!(payload, vec![src as u8]);
                    seen[src] = true;
                }
                assert_eq!(&seen[1..], &[true, true, true]);
            } else {
                comm.send(0, 5, &[comm.rank() as u8]);
            }
        });
    }

    #[test]
    fn stats_count_bytes() {
        let stats = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0u8; 100]);
            } else {
                comm.recv(0, 1);
            }
            comm.stats()
        });
        assert_eq!(stats[0].msgs_sent, 1);
        assert_eq!(stats[0].bytes_sent, 100);
        assert_eq!(stats[1].msgs_sent, 0);
    }

    #[test]
    fn many_to_many_stress() {
        World::run(6, |comm| {
            let me = comm.rank();
            for round in 0..50u64 {
                for dst in 0..comm.size() {
                    if dst != me {
                        comm.send(dst, round, &[me as u8, round as u8]);
                    }
                }
                for src in 0..comm.size() {
                    if src != me {
                        let m = comm.recv(src, round);
                        assert_eq!(m, vec![src as u8, round as u8]);
                    }
                }
            }
        });
    }

    #[test]
    fn isend_irecv_wait() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                let mut s = comm.isend(1, 9, b"hello".to_vec());
                let (src, p) = comm.wait(&mut s);
                assert_eq!((src, p), (0, vec![]));
                assert!(s.is_done());
            } else {
                let mut r = comm.irecv(0, 9);
                let (src, p) = comm.wait(&mut r);
                assert_eq!(src, 0);
                assert_eq!(p, b"hello");
            }
        });
    }

    #[test]
    fn test_completes_without_blocking() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.recv(1, 2); // sync: rank 1's data msg already sent
                let mut r = comm.irecv(1, 1);
                let (src, p) = comm.test(&mut r).expect("message already arrived");
                assert_eq!((src, p.as_slice()), (1, &b"x"[..]));
            } else {
                comm.send(0, 1, b"x");
                comm.send(0, 2, b"go");
            }
        });
    }

    #[test]
    fn wait_any_completes_in_arrival_order() {
        World::run(4, |comm| {
            if comm.rank() == 0 {
                let mut reqs: Vec<_> = (1..4).map(|p| comm.irecv(p, 11)).collect();
                let mut got = Vec::new();
                for _ in 0..3 {
                    let (i, src, p) = comm.wait_any(&mut reqs);
                    assert_eq!(src, i + 1);
                    assert_eq!(p, vec![src as u8]);
                    got.push(src);
                }
                got.sort_unstable();
                assert_eq!(got, vec![1, 2, 3]);
                assert!(reqs.iter().all(|r| r.is_done()));
            } else {
                comm.send(0, 11, &[comm.rank() as u8]);
            }
        });
    }
}
