//! Communicators and point-to-point messaging.
//!
//! Ranks are threads; transport is an mpsc channel per ordered rank
//! pair. Messages physically move through the channels (the ol-lists of
//! the list-based engine are really serialized and sent), so communication
//! *volume* — the quantity the paper's two-phase analysis hinges on — is
//! faithfully represented, with shared-memory transport standing in for
//! the SX's internode crossbar.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use lio_obs::{LazyCounter, LazyHistogram};

/// Point-to-point traffic (user sends), distinguished from collective
/// traffic so the ol-list metadata exchanged inside two-phase collectives
/// is directly observable against the data it moves.
static OBS_P2P_MSGS: LazyCounter = LazyCounter::new("mpi.p2p.msgs");
static OBS_P2P_BYTES: LazyCounter = LazyCounter::new("mpi.p2p.bytes");
static OBS_COLL_MSGS: LazyCounter = LazyCounter::new("mpi.coll.msgs");
static OBS_COLL_BYTES: LazyCounter = LazyCounter::new("mpi.coll.bytes");
static OBS_MSG_SIZE: LazyHistogram = LazyHistogram::new("mpi.msg.size");

/// Wildcard source for [`Comm::recv_any`].
pub const ANY_SOURCE: usize = usize::MAX;

/// Tag space reserved for collective operations; user tags must be below.
const COLL_TAG_BASE: u64 = 1 << 32;

/// A message in flight.
#[derive(Debug)]
pub(crate) struct Message {
    pub src: usize,
    pub tag: u64,
    pub payload: Vec<u8>,
}

/// Communication statistics for one rank.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub msgs_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
}

/// Shared per-world counters, indexed by rank.
pub(crate) struct WorldCounters {
    pub msgs: Vec<AtomicU64>,
    pub bytes: Vec<AtomicU64>,
}

/// One rank's endpoint of the communicator.
///
/// A `Comm` is owned by exactly one thread (it is `Send` but not `Sync`);
/// [`crate::World::run`] hands each spawned rank its own.
pub struct Comm {
    rank: usize,
    size: usize,
    /// senders[q] transmits to rank q.
    senders: Vec<Sender<Message>>,
    /// receivers[q] yields messages sent by rank q.
    receivers: Vec<Receiver<Message>>,
    /// Out-of-order messages already drained from a channel, per source.
    pending: RefCell<Vec<VecDeque<Message>>>,
    /// Sequence number disambiguating successive collective operations.
    coll_seq: RefCell<u64>,
    counters: Arc<WorldCounters>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Message>>,
        receivers: Vec<Receiver<Message>>,
        counters: Arc<WorldCounters>,
    ) -> Comm {
        Comm {
            rank,
            size,
            senders,
            receivers,
            pending: RefCell::new((0..size).map(|_| VecDeque::new()).collect()),
            coll_seq: RefCell::new(0),
            counters,
        }
    }

    /// This rank's index in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's communication statistics so far.
    pub fn stats(&self) -> CommStats {
        CommStats {
            msgs_sent: self.counters.msgs[self.rank].load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes[self.rank].load(Ordering::Relaxed),
        }
    }

    /// Aggregate statistics across all ranks.
    pub fn world_stats(&self) -> CommStats {
        let mut s = CommStats::default();
        for r in 0..self.size {
            s.msgs_sent += self.counters.msgs[r].load(Ordering::Relaxed);
            s.bytes_sent += self.counters.bytes[r].load(Ordering::Relaxed);
        }
        s
    }

    // ----- point-to-point -------------------------------------------------

    /// Send `payload` to rank `dst` with a user `tag` (must be `< 2^32`).
    pub fn send(&self, dst: usize, tag: u64, payload: &[u8]) {
        debug_assert!(tag < COLL_TAG_BASE, "user tags must be below 2^32");
        self.send_vec(dst, tag, payload.to_vec());
    }

    /// Send an owned buffer, avoiding a copy.
    pub fn send_vec(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        debug_assert!(tag < COLL_TAG_BASE, "user tags must be below 2^32");
        OBS_P2P_MSGS.incr();
        OBS_P2P_BYTES.add(payload.len() as u64);
        self.send_raw(dst, tag, payload);
    }

    fn send_raw(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        assert!(dst < self.size, "destination rank {dst} out of range");
        OBS_MSG_SIZE.record(payload.len() as u64);
        self.counters.msgs[self.rank].fetch_add(1, Ordering::Relaxed);
        self.counters.bytes[self.rank].fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.senders[dst]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver rank terminated with messages in flight");
    }

    /// Receive the next message from `src` carrying `tag` (blocking,
    /// in-order per (src, tag) as in MPI).
    pub fn recv(&self, src: usize, tag: u64) -> Vec<u8> {
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw(&self, src: usize, tag: u64) -> Vec<u8> {
        assert!(src < self.size, "source rank {src} out of range");
        // check the stash first
        {
            let mut pending = self.pending.borrow_mut();
            let q = &mut pending[src];
            if let Some(i) = q.iter().position(|m| m.tag == tag) {
                return q.remove(i).expect("index in range").payload;
            }
        }
        // drain the channel until the tag appears
        loop {
            let msg = self.receivers[src]
                .recv()
                .expect("sender rank terminated while a receive was posted");
            debug_assert_eq!(msg.src, src, "message arrived on the wrong channel");
            if msg.tag == tag {
                return msg.payload;
            }
            self.pending.borrow_mut()[src].push_back(msg);
        }
    }

    /// Receive the next message with `tag` from any source; returns
    /// `(src, payload)`. Sources are polled fairly.
    pub fn recv_any(&self, tag: u64) -> (usize, Vec<u8>) {
        // check stashes first
        {
            let mut pending = self.pending.borrow_mut();
            for src in 0..self.size {
                let q = &mut pending[src];
                if let Some(i) = q.iter().position(|m| m.tag == tag) {
                    return (src, q.remove(i).expect("index in range").payload);
                }
            }
        }
        // poll channels round-robin (a select over a dynamic set)
        loop {
            let mut progressed = false;
            for src in 0..self.size {
                while let Ok(msg) = self.receivers[src].try_recv() {
                    progressed = true;
                    if msg.tag == tag {
                        return (src, msg.payload);
                    }
                    self.pending.borrow_mut()[src].push_back(msg);
                }
            }
            if !progressed {
                std::thread::yield_now();
            }
        }
    }

    /// Next collective-operation tag; all ranks call collectives in the
    /// same order (an MPI requirement), so sequence numbers align.
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let mut seq = self.coll_seq.borrow_mut();
        *seq += 1;
        COLL_TAG_BASE + *seq * 16
    }

    pub(crate) fn send_coll(&self, dst: usize, tag: u64, payload: Vec<u8>) {
        OBS_COLL_MSGS.incr();
        OBS_COLL_BYTES.add(payload.len() as u64);
        self.send_raw(dst, tag, payload);
    }
}

#[cfg(test)]
mod tests {
    use crate::World;

    #[test]
    fn rank_and_size() {
        let ranks = World::run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ping_pong() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"ping");
                assert_eq!(comm.recv(1, 8), b"pong");
            } else {
                assert_eq!(comm.recv(0, 7), b"ping");
                comm.send(0, 8, b"pong");
            }
        });
    }

    #[test]
    fn tag_matching_out_of_order() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"first");
                comm.send(1, 2, b"second");
            } else {
                // receive in reverse tag order
                assert_eq!(comm.recv(0, 2), b"second");
                assert_eq!(comm.recv(0, 1), b"first");
            }
        });
    }

    #[test]
    fn same_tag_preserves_order() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u8 {
                    comm.send(1, 3, &[i]);
                }
            } else {
                for i in 0..10u8 {
                    assert_eq!(comm.recv(0, 3), vec![i]);
                }
            }
        });
    }

    #[test]
    fn recv_any_collects_all() {
        World::run(4, |comm| {
            if comm.rank() == 0 {
                let mut seen = [false; 4];
                for _ in 0..3 {
                    let (src, payload) = comm.recv_any(5);
                    assert_eq!(payload, vec![src as u8]);
                    seen[src] = true;
                }
                assert_eq!(&seen[1..], &[true, true, true]);
            } else {
                comm.send(0, 5, &[comm.rank() as u8]);
            }
        });
    }

    #[test]
    fn stats_count_bytes() {
        let stats = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0u8; 100]);
            } else {
                comm.recv(0, 1);
            }
            comm.stats()
        });
        assert_eq!(stats[0].msgs_sent, 1);
        assert_eq!(stats[0].bytes_sent, 100);
        assert_eq!(stats[1].msgs_sent, 0);
    }

    #[test]
    fn many_to_many_stress() {
        World::run(6, |comm| {
            let me = comm.rank();
            for round in 0..50u64 {
                for dst in 0..comm.size() {
                    if dst != me {
                        comm.send(dst, round, &[me as u8, round as u8]);
                    }
                }
                for src in 0..comm.size() {
                    if src != me {
                        let m = comm.recv(src, round);
                        assert_eq!(m, vec![src as u8, round as u8]);
                    }
                }
            }
        });
    }
}
