//! Regression tests for receive fairness and stash growth: a peer
//! flooding one tag must neither starve other sources in `recv_any`
//! nor balloon the out-of-order `pending` stash.

use lio_mpi::World;

const TAG_FLOOD: u64 = 1;
const TAG_WANTED: u64 = 2;
const TAG_GO: u64 = 3;

/// Rank 1 floods rank 0 with `TAG_FLOOD` messages, then (and only then)
/// releases rank 2 to send one `TAG_WANTED` message — the flood's head
/// start is sequenced by a message instead of a wall-clock sleep, so the
/// test cannot flake on slow machines. Rank 0's `recv_any(TAG_WANTED)`
/// must complete with the wanted message despite the flood, the stash
/// must hold at most the flood, and the parked flood must still drain in
/// FIFO completion order afterwards.
#[test]
fn recv_any_survives_flood_with_bounded_stash() {
    const FLOOD: u64 = 5000;
    World::run(3, |comm| match comm.rank() {
        0 => {
            let (src, payload) = comm.recv_any(TAG_WANTED);
            assert_eq!(src, 2, "recv_any completed the wrong source");
            assert_eq!(payload, b"wanted");
            // The budgeted sweep parks mismatched flood messages while
            // probing; everything parked must still be there, nothing
            // may have been duplicated or invented.
            let stashed = comm.stashed_msgs();
            assert!(
                stashed <= FLOOD as usize,
                "stash holds {stashed} messages but only {FLOOD} were sent"
            );
            // Completion-sequence check: the flood drains in exactly the
            // order it was sent, stash first, channel after.
            for i in 0..FLOOD {
                assert_eq!(
                    comm.recv(1, TAG_FLOOD),
                    i.to_le_bytes(),
                    "flood message {i} completed out of order"
                );
            }
            assert_eq!(comm.stashed_msgs(), 0, "messages left parked after drain");
        }
        1 => {
            for i in 0..FLOOD {
                comm.send(0, TAG_FLOOD, &i.to_le_bytes());
            }
            // The entire flood is in rank 0's channel; now release the
            // wanted message.
            comm.send(2, TAG_GO, b"");
        }
        _ => {
            comm.recv(1, TAG_GO);
            comm.send(0, TAG_WANTED, b"wanted");
        }
    });
}

/// Out-of-order receives keyed by (source, tag) still match after a
/// large same-source flood on a different tag has been stashed.
#[test]
fn stashed_flood_still_matched_by_tag() {
    World::run(2, |comm| {
        if comm.rank() == 0 {
            // The wanted message sits behind 5000 flood messages in the
            // same channel; recv must drain past them and later receives
            // of the flood tag must pop the stash in FIFO order.
            assert_eq!(comm.recv(1, TAG_WANTED), b"behind the flood");
            assert_eq!(comm.stashed_msgs(), 5000);
            for i in 0..5000u64 {
                let m = comm.recv(1, TAG_FLOOD);
                assert_eq!(m, i.to_le_bytes());
            }
            assert_eq!(comm.stashed_msgs(), 0);
        } else {
            for i in 0..5000u64 {
                comm.send(0, TAG_FLOOD, &i.to_le_bytes());
            }
            comm.send(0, TAG_WANTED, b"behind the flood");
        }
    });
}
