//! Regression tests for receive fairness and stash growth: a peer
//! flooding one tag must neither starve other sources in `recv_any`
//! nor balloon the out-of-order `pending` stash.

use std::time::Duration;

use lio_mpi::World;

const TAG_FLOOD: u64 = 1;
const TAG_WANTED: u64 = 2;
const TAG_STOP: u64 = 3;
const TAG_COUNT: u64 = 4;

/// Rank 1 floods rank 0 with `TAG_FLOOD` messages until told to stop;
/// rank 2 sends one `TAG_WANTED` message after a delay. Rank 0's
/// `recv_any(TAG_WANTED)` must find it while draining only a bounded
/// number of flood messages into the stash.
#[test]
fn recv_any_survives_flood_with_bounded_stash() {
    World::run(3, |comm| match comm.rank() {
        0 => {
            let (src, payload) = comm.recv_any(TAG_WANTED);
            assert_eq!(src, 2);
            assert_eq!(payload, b"wanted");
            // The budgeted sweep may park some flood messages per probe,
            // but must not have drained the whole flood into the stash.
            let stashed = comm.stashed_msgs();
            comm.send(1, TAG_STOP, b"");
            let count = comm.recv(1, TAG_COUNT);
            let sent = u64::from_le_bytes(count[..8].try_into().unwrap());
            // drain the flood so no messages are left in flight at exit
            for _ in 0..sent {
                comm.recv(1, TAG_FLOOD);
            }
            assert!(
                stashed <= 4096,
                "stash grew unboundedly under flood: {stashed} messages parked"
            );
            assert!(sent >= 100, "flood too small to exercise the stash: {sent}");
        }
        1 => {
            let mut stop = comm.irecv(0, TAG_STOP);
            let mut sent = 0u64;
            while comm.test(&mut stop).is_none() {
                comm.send(0, TAG_FLOOD, &[0u8; 8]);
                sent += 1;
            }
            comm.send(0, TAG_COUNT, &sent.to_le_bytes());
        }
        _ => {
            // give the flood a head start so the test means something
            std::thread::sleep(Duration::from_millis(30));
            comm.send(0, TAG_WANTED, b"wanted");
        }
    });
}

/// Out-of-order receives keyed by (source, tag) still match after a
/// large same-source flood on a different tag has been stashed.
#[test]
fn stashed_flood_still_matched_by_tag() {
    World::run(2, |comm| {
        if comm.rank() == 0 {
            // The wanted message sits behind 5000 flood messages in the
            // same channel; recv must drain past them and later receives
            // of the flood tag must pop the stash in FIFO order.
            assert_eq!(comm.recv(1, TAG_WANTED), b"behind the flood");
            assert_eq!(comm.stashed_msgs(), 5000);
            for i in 0..5000u64 {
                let m = comm.recv(1, TAG_FLOOD);
                assert_eq!(m, i.to_le_bytes());
            }
            assert_eq!(comm.stashed_msgs(), 0);
        } else {
            for i in 0..5000u64 {
                comm.send(0, TAG_FLOOD, &i.to_le_bytes());
            }
            comm.send(0, TAG_WANTED, b"behind the flood");
        }
    });
}
