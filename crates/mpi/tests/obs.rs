//! `lio-obs` under real rank concurrency: counters written from every
//! rank of a [`World::run`] must aggregate without loss, and the p2p
//! metrics must account for exactly the messages sent.

use std::sync::{Mutex, MutexGuard};

use lio_mpi::World;
use lio_obs::LazyCounter;

/// Tests in this binary toggle the process-global enabled flag and reset
/// the registry; serialize them.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

static RANK_ADDS: LazyCounter = LazyCounter::new("test.mpi.rank_adds");

#[test]
fn ranks_increment_concurrently_without_loss() {
    let _g = obs_lock();
    lio_obs::reset();
    lio_obs::set_enabled(true);
    let nprocs = 8;
    let per_rank = 10_000u64;
    World::run(nprocs, move |comm| {
        for _ in 0..per_rank {
            RANK_ADDS.incr();
        }
        // keep the ranks genuinely overlapped rather than serially spawned
        comm.barrier();
        for _ in 0..per_rank {
            RANK_ADDS.add(2);
        }
    });
    lio_obs::set_enabled(false);
    assert_eq!(RANK_ADDS.get(), nprocs as u64 * per_rank * 3);
}

#[test]
fn p2p_metrics_account_for_every_message() {
    let _g = obs_lock();
    lio_obs::reset();
    lio_obs::set_enabled(true);
    let nprocs = 4;
    let payload = 100usize;
    World::run(nprocs, move |comm| {
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send_vec(next, 7, vec![comm.rank() as u8; payload]);
        let got = comm.recv(prev, 7);
        assert_eq!(got, vec![prev as u8; payload]);
    });
    lio_obs::set_enabled(false);
    let snap = lio_obs::snapshot();
    assert_eq!(snap.counter("mpi.p2p.msgs"), nprocs as u64);
    assert_eq!(snap.counter("mpi.p2p.bytes"), (nprocs * payload) as u64);
    // every p2p send also lands one sample in the size histogram
    let h = snap.histogram("mpi.msg.size").expect("size histogram");
    assert_eq!(h.count, nprocs as u64);
    assert_eq!(h.sum, (nprocs * payload) as u64);
}

#[test]
fn collective_traffic_counted_separately() {
    let _g = obs_lock();
    lio_obs::reset();
    lio_obs::set_enabled(true);
    World::run(4, |comm| {
        let all = comm.allgather(vec![comm.rank() as u8; 8]);
        assert_eq!(all.len(), comm.size());
    });
    lio_obs::set_enabled(false);
    let snap = lio_obs::snapshot();
    assert!(
        snap.counter("mpi.coll.msgs") > 0,
        "allgather sends no collective messages?"
    );
    assert_eq!(
        snap.counter("mpi.p2p.msgs"),
        0,
        "allgather must not count as p2p"
    );
}
