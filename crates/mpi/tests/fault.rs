//! The communication fault injector must perturb *schedules* without
//! perturbing *semantics*: duplicated deliveries are dropped exactly
//! once, delayed any-source polls preserve per-(source, tag) FIFO order
//! and lose nothing, a reordered `wait_any` still completes every
//! request, and the collectives built on point-to-point stay correct
//! under all of it.

use lio_mpi::{CommFaultPlan, World};

#[test]
fn duplicates_are_transparent_and_counted() {
    const N: u64 = 500;
    let stats = World::run(2, |comm| {
        comm.set_fault_plan(Some(CommFaultPlan {
            seed: 0xD0B5,
            dup_per_256: 128,
            lag_per_256: 0,
            max_lag_polls: 0,
            reorder_scan: false,
        }));
        if comm.rank() == 0 {
            for i in 0..N {
                comm.send(1, 7, &i.to_le_bytes());
            }
            // Snapshot, then send the closing marker with injection off,
            // so no duplicate can be left undrained behind it.
            let stats = comm.fault_stats();
            comm.set_fault_plan(None);
            comm.send(1, 8, b"fin");
            return stats;
        }
        {
            for i in 0..N {
                assert_eq!(comm.recv(0, 7), i.to_le_bytes(), "stream corrupted at {i}");
            }
            // Draining past the final data message flushes any trailing
            // duplicate, making the drop count exact.
            assert_eq!(comm.recv(0, 8), b"fin");
        }
        comm.fault_stats()
    });
    assert!(
        stats[0].dups_injected > N / 8,
        "a 128/256 plan injected only {} dups",
        stats[0].dups_injected
    );
    assert_eq!(
        stats[1].dups_dropped, stats[0].dups_injected,
        "every injected duplicate must be dropped exactly once"
    );
}

#[test]
fn delayed_polls_preserve_fifo_and_lose_nothing() {
    const PER_RANK: u64 = 200;
    World::run(4, |comm| {
        comm.set_fault_plan(Some(CommFaultPlan {
            seed: 0x1A6 ^ comm.rank() as u64,
            dup_per_256: 64,
            lag_per_256: 200,
            max_lag_polls: 5,
            reorder_scan: false,
        }));
        if comm.rank() == 0 {
            let mut next = [0u64; 4];
            for _ in 0..3 * PER_RANK {
                let (src, p) = comm.recv_any(9);
                let v = u64::from_le_bytes(p.try_into().unwrap());
                assert_eq!(v, next[src], "per-source FIFO violated for source {src}");
                next[src] += 1;
            }
            assert_eq!(
                next[1..],
                [PER_RANK; 3],
                "messages lost under delay injection"
            );
            let stats = comm.fault_stats();
            assert!(
                stats.delays_injected > 0,
                "a 200/256 plan never deferred a poll"
            );
        } else {
            for i in 0..PER_RANK {
                comm.send(0, 9, &i.to_le_bytes());
            }
        }
    });
}

#[test]
fn reordered_wait_any_completes_every_request() {
    const PER_RANK: usize = 10;
    World::run(4, |comm| {
        comm.set_fault_plan(Some(CommFaultPlan::seeded(0x5CAD ^ comm.rank() as u64)));
        if comm.rank() == 0 {
            let mut reqs: Vec<_> = (1..4)
                .flat_map(|p| (0..PER_RANK).map(move |_| p))
                .map(|p| comm.irecv(p, 11))
                .collect();
            let mut per_src: Vec<Vec<u8>> = vec![Vec::new(); 4];
            for _ in 0..reqs.len() {
                let (_, src, p) = comm.wait_any(&mut reqs);
                assert_eq!(p[0] as usize, src);
                per_src[src].push(p[1]);
            }
            assert!(reqs.iter().all(|r| r.is_done()));
            for (src, got) in per_src.iter().enumerate().skip(1) {
                // All requests for one (src, tag) complete in FIFO order
                // no matter how the scan was rotated.
                let want: Vec<u8> = (0..PER_RANK as u8).collect();
                assert_eq!(got, &want, "source {src} completions out of order");
            }
        } else {
            for i in 0..PER_RANK as u8 {
                comm.send(0, 11, &[comm.rank() as u8, i]);
            }
        }
    });
}

#[test]
fn collectives_survive_comm_faults() {
    let sums = World::run(4, |comm| {
        comm.set_fault_plan(Some(CommFaultPlan::seeded(0xC011 ^ comm.rank() as u64)));
        let mut acc = 0u64;
        for round in 0..25u64 {
            comm.barrier();
            let all = comm.allgather(vec![comm.rank() as u8, round as u8]);
            for (r, v) in all.iter().enumerate() {
                assert_eq!(v[..], [r as u8, round as u8], "allgather corrupted");
            }
            acc += comm.allsum_u64(comm.rank() as u64 + round);
        }
        acc
    });
    // sum over ranks of (0+1+2+3) + 4*round, identical on every rank
    let want: u64 = (0..25u64).map(|r| 6 + 4 * r).sum();
    assert_eq!(sums, vec![want; 4]);
}
