#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 gate (see ROADMAP.md).
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "CI OK"
