#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 gate (see ROADMAP.md).
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

# The collective suites again with the pipeline override forced both
# ways, so every differential case runs both the monolithic and the
# pipelined schedule regardless of per-test hints. (pipeline_mem is
# excluded on purpose: it asserts on the pipeline's own gauges and is
# not meaningful when the env override forces the hint off.)
echo "== collective suites under LIO_PIPELINE=0"
LIO_PIPELINE=0 cargo test -q -p lio-core --test collective --test pipeline

echo "== collective suites under LIO_PIPELINE=1"
LIO_PIPELINE=1 cargo test -q -p lio-core --test collective --test pipeline

# The collective suites again with the sharded pack/unpack forced on
# and off: LIO_PACK_THREADS=4 routes every listless memtype copy above
# the threshold through the multi-threaded shard path, so a sharding
# bug fails the same differential cases the single-threaded path passes.
for pt in 1 4; do
  echo "== collective suites under LIO_PACK_THREADS=$pt"
  LIO_PACK_THREADS=$pt cargo test -q -p lio-core --test collective --test pipeline --test faults
done

# Compiled-program overhead gate: on a flat-contiguous type the run
# program must stay within 2% of the naive tree walk (exits non-zero
# on a sustained violation).
echo "== pack_overhead gate"
LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench pack_overhead

# Fault corpus: the three fixed seeds plus a rotating, commit-derived
# seed so the corpus keeps widening over time without losing replay
# determinism (the seed depends only on the commit, never the clock).
# On failure, replay the exact schedule with:
#   LIO_FAULT_SEED=<seed> LIO_PIPELINE=<0|1> \
#     cargo test -p lio-core --test collective --test pipeline --test faults
ROTATING_SEED="0x$(git rev-parse --short=8 HEAD 2>/dev/null || echo 5EED)"
for seed in 7 0xBAD5EED 0x5C032003 "$ROTATING_SEED"; do
  for pipe in 0 1; do
    echo "== fault corpus: LIO_FAULT_SEED=$seed LIO_PIPELINE=$pipe"
    if ! LIO_FAULT_SEED=$seed LIO_PIPELINE=$pipe \
        cargo test -q -p lio-core --test collective --test pipeline --test faults; then
      echo "FAULT CORPUS FAILURE — replay with:"
      echo "  LIO_FAULT_SEED=$seed LIO_PIPELINE=$pipe cargo test -p lio-core --test collective --test pipeline --test faults"
      exit 1
    fi
  done
done

echo "CI OK"
