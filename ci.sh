#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 gate (see ROADMAP.md).
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

# The collective suites again with the pipeline override forced both
# ways, so every differential case runs both the monolithic and the
# pipelined schedule regardless of per-test hints. (pipeline_mem is
# excluded on purpose: it asserts on the pipeline's own gauges and is
# not meaningful when the env override forces the hint off.)
echo "== collective suites under LIO_PIPELINE=0"
LIO_PIPELINE=0 cargo test -q -p lio-core --test collective --test pipeline

echo "== collective suites under LIO_PIPELINE=1"
LIO_PIPELINE=1 cargo test -q -p lio-core --test collective --test pipeline

echo "CI OK"
