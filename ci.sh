#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 gate (see ROADMAP.md).
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

# The collective suites again with the pipeline override forced both
# ways, so every differential case runs both the monolithic and the
# pipelined schedule regardless of per-test hints. (pipeline_mem is
# excluded on purpose: it asserts on the pipeline's own gauges and is
# not meaningful when the env override forces the hint off.)
echo "== collective suites under LIO_PIPELINE=0"
LIO_PIPELINE=0 cargo test -q -p lio-core --test collective --test pipeline

echo "== collective suites under LIO_PIPELINE=1"
LIO_PIPELINE=1 cargo test -q -p lio-core --test collective --test pipeline

# Real-storage backend: the collective + pipeline + fault suites again
# with every storage stack forced onto OsFile (submission queue over a
# real unlinked file), once on tmpfs and once on a real directory so
# both the fast-page-cache and the ordinary-filesystem paths are
# exercised. Cross-backend equivalence itself is the backend corpus:
# the same differential cases must produce byte-identical files under
# every backend × pipeline combination.
mkdir -p target/lio-os-ci
for osdir in /dev/shm "$PWD/target/lio-os-ci"; do
  echo "== collective/pipeline/faults suites under LIO_BACKEND=os LIO_OS_DIR=$osdir"
  LIO_BACKEND=os LIO_OS_DIR=$osdir \
    cargo test -q -p lio-core --test collective --test pipeline --test faults
  echo "== OsFile fault/edge suites under LIO_OS_DIR=$osdir"
  LIO_OS_DIR=$osdir cargo test -q -p lio-pfs --test os_faults --test os_edge
done

echo "== backend corpus cross-product LIO_BACKEND={mem,os} x LIO_PIPELINE={0,1}"
for be in mem os; do
  for pipe in 0 1; do
    echo "  -- LIO_BACKEND=$be LIO_PIPELINE=$pipe"
    LIO_BACKEND=$be LIO_PIPELINE=$pipe cargo test -q -p lio-core --test backend
  done
done

# The collective suites again with the sharded pack/unpack forced on
# and off: LIO_PACK_THREADS=4 routes every listless memtype copy above
# the threshold through the multi-threaded shard path, so a sharding
# bug fails the same differential cases the single-threaded path passes.
for pt in 1 4; do
  echo "== collective suites under LIO_PACK_THREADS=$pt"
  LIO_PACK_THREADS=$pt cargo test -q -p lio-core --test collective --test pipeline --test faults
done

# The suites again with the pack-kernel mode forced both ways: every
# kernel family must be bit-identical to the scalar reference loop, so
# the same differential cases must pass with the kernels disabled and
# with the best CPU-supported family engaged.
for pk in scalar auto; do
  echo "== collective/pipeline/faults/datatype suites under LIO_PACK_KERNEL=$pk"
  LIO_PACK_KERNEL=$pk cargo test -q -p lio-core --test collective --test pipeline --test faults
  LIO_PACK_KERNEL=$pk cargo test -q -p lio-datatype
done

# Self-tuning corpus: the differential suites with the tuner armed on
# every file — the tuner may only move performance knobs, so every
# corpus case must stay byte-identical to the naive reference while
# knobs shift mid-run. (pipeline_mem/zerocopy are excluded on purpose:
# they pin engine-specific gauges, and the tuner legitimately changes
# which schedule runs.)
for be in mem os; do
  echo "== autotune corpus under LIO_AUTOTUNE=1 LIO_BACKEND=$be"
  LIO_AUTOTUNE=1 LIO_BACKEND=$be \
    cargo test -q -p lio-core --test collective --test pipeline --test faults --test backend
done

# Tuner determinism + fault-safety + cold-start==advisor + autotuned
# differential corpus (ranks x backends), in a clean env.
echo "== autotune suite"
cargo test -q -p lio-core --test autotune

# Event tracing: the collective + pipeline suites once more with the
# recorder armed (catches trace-enabled-only panics), plus the dedicated
# trace-correctness tests (span pairing, causal merge, ring wraparound,
# critical path).
echo "== collective suites under LIO_TRACE=1"
LIO_TRACE=1 cargo test -q -p lio-core --test collective --test pipeline
echo "== trace correctness tests"
cargo test -q -p lio-core --test trace

# Runtime health layer: the collective + pipeline + fault suites once
# more with heartbeats armed on every file (catches health-enabled-only
# panics and watchdog false positives across the differential corpus),
# then the dedicated hang-injection suite under a hard timeout so a
# watchdog regression can never wedge CI itself.
echo "== collective/pipeline/faults suites under LIO_HEALTH=1"
LIO_HEALTH=1 cargo test -q -p lio-core --test collective --test pipeline --test faults

echo "== hang-injection suite (hard 300 s timeout)"
timeout 300 cargo test -q -p lio-core --test health

# repro trace must produce a well-formed Perfetto timeline whose
# critical-path report names a bounding phase.
echo "== repro trace + validate-json"
./target/release/repro trace --quick | tee /tmp/lio_trace_out.txt
grep -q "bounding" /tmp/lio_trace_out.txt
./target/release/repro validate-json results/trace.json

# Access-pattern profiler + hint advisor: the three reference workloads
# must produce per-rule recommendations with printed reasoning and a
# schema-versioned, well-formed profile artifact.
echo "== repro profile + validate-json"
./target/release/repro profile --quick | tee /tmp/lio_profile_out.txt
grep -q "engine=listless" /tmp/lio_profile_out.txt
grep -q "two_phase_pipeline=enable" /tmp/lio_profile_out.txt
grep -q "pack_kernel=auto" /tmp/lio_profile_out.txt
# the ragged workload's programs must be attributed to the
# normalization pass, not reported as born strided
grep -Eq "ragged_hindexed_pack:.*[1-9][0-9]* rewritten" /tmp/lio_profile_out.txt
./target/release/repro validate-json results/profile.json

# Compiled-program overhead gate: on a flat-contiguous type the run
# program must stay within 2% of the naive tree walk (exits non-zero
# on a sustained violation).
echo "== pack_overhead gate"
LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench pack_overhead

# Kernel overhead gate: on a flat-contiguous type (one huge block — the
# fixed-block kernels must not engage) auto mode must stay within 2% of
# a forced-scalar run.
echo "== kernel_overhead gate"
LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench kernel_overhead

# Trace overhead: same noise-floor structure as obs_overhead — with
# tracing disabled the hooks must be within run-to-run noise.
echo "== trace_overhead gate"
LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench trace_overhead

# Profiler overhead: same noise-floor structure — with profiling
# disabled the record hooks must be within run-to-run noise.
echo "== profile_overhead gate"
LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench profile_overhead

# Health overhead: same noise-floor structure — with the layer disabled
# every heartbeat site is one relaxed atomic load and must be within
# run-to-run noise (<2%).
echo "== health_overhead gate"
LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench health_overhead

# Submission-queue backend overhead gate: on contiguous page-aligned
# 4 MiB transfers the OsFile layer must stay within 5% of a direct
# pread/pwrite (exits non-zero on a clean violation; prints CHECK when
# the host's own noise floor exceeds the threshold).
echo "== os_overhead gate"
LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench os_overhead

# Tuner-enabled-but-already-optimal overhead gate: <=2% wall overhead
# and zero net knob movement after settling (exits non-zero on a clean
# violation; prints CHECK when the host's own noise floor exceeds it).
echo "== autotune_overhead gate"
LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench autotune_overhead

# Self-tuning convergence proof: from cold-start default hints, the
# tuned wall time must reach within 10% of the best static config (the
# exhaustive sweep runs in the same invocation) in at most 8 ops; the
# binary exits non-zero on a miss and writes BENCH_autotune.json.
echo "== repro autotune + validate-json"
./target/release/repro autotune --quick | tee /tmp/lio_autotune_out.txt
grep -q "converged at op" /tmp/lio_autotune_out.txt
./target/release/repro validate-json BENCH_autotune.json

# Perf trajectory: regenerate every committed BENCH_*.json artifact and
# compare against its baseline. Any time-unit metric regressing beyond
# the threshold fails CI with the (bench, config, metric) triple named;
# the threshold is deliberately loose (50%) so shared-host noise doesn't
# block while real cliffs stay on record.
echo "== bench baseline comparison (fail at >${LIO_BENCH_COMPARE_PCT:-50}%)"
export LIO_BENCH_COMPARE_PCT="${LIO_BENCH_COMPARE_PCT:-50}"
regen_bench() {
  case "$1" in
    BENCH_pipeline.json) LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench pipeline ;;
    BENCH_pack.json)     LIO_BENCH_FAST=1 cargo bench -q -p lio-bench --bench pack ;;
    BENCH_metrics.json)  ./target/release/repro metrics --quick ;;
    BENCH_autotune.json) ./target/release/repro autotune --quick ;;
    *) return 1 ;;
  esac
}
for bj in $(git ls-tree --name-only HEAD | grep '^BENCH_.*\.json$'); do
  git show "HEAD:$bj" > "/tmp/lio_baseline_$bj"
  if ! grep -q schema_version "/tmp/lio_baseline_$bj"; then
    echo "  ($bj baseline predates the schema — skipping)"
    continue
  fi
  if [ "$bj" = "BENCH_pack.json" ] && ! grep -q pack_kernels "/tmp/lio_baseline_$bj"; then
    echo "  ($bj baseline lacks pack_kernels columns — skipping)"
    continue
  fi
  if ! regen_bench "$bj"; then
    echo "  (no regeneration recipe for $bj — skipping)"
    continue
  fi
  ./target/release/repro bench-compare --fail "/tmp/lio_baseline_$bj" "$bj"
done

# Fault corpus: the three fixed seeds plus a rotating, commit-derived
# seed so the corpus keeps widening over time without losing replay
# determinism (the seed depends only on the commit, never the clock).
# On failure, replay the exact schedule with:
#   LIO_FAULT_SEED=<seed> LIO_PIPELINE=<0|1> \
#     cargo test -p lio-core --test collective --test pipeline --test faults
ROTATING_SEED="0x$(git rev-parse --short=8 HEAD 2>/dev/null || echo 5EED)"
for seed in 7 0xBAD5EED 0x5C032003 "$ROTATING_SEED"; do
  for pipe in 0 1; do
    echo "== fault corpus: LIO_FAULT_SEED=$seed LIO_PIPELINE=$pipe"
    if ! LIO_FAULT_SEED=$seed LIO_PIPELINE=$pipe \
        cargo test -q -p lio-core --test collective --test pipeline --test faults; then
      echo "FAULT CORPUS FAILURE — replay with:"
      echo "  LIO_FAULT_SEED=$seed LIO_PIPELINE=$pipe cargo test -p lio-core --test collective --test pipeline --test faults"
      exit 1
    fi
  done
done

echo "CI OK"
